//! The experiment implementations behind each table/figure binary.
//!
//! Every function builds the required datasets at the requested
//! [`ScaleProfile`], runs the measurement, and returns a plain-text report
//! that mirrors the corresponding table or figure of the paper. The binaries
//! in `src/bin/` are thin wrappers; `all_experiments` chains everything and
//! is what the `all_experiments` report is produced from.

use crate::json::Json;
use crate::ownerbench::{owner_microbench, OwnerBenchResult};
use crate::{megabytes, render_table, replay_timed, with_commas, Summary, Timings};
use deltanet::persist;
use deltanet::{
    CheckpointConfig, CheckpointManager, DeltaNet, DeltaNetConfig, Durability, FsBackend,
    LoggedNet, Parallelism, PersistError, PersistNet, RecoveryPolicy, ShardedDeltaNet, Snapshot,
};
use netmodel::checker::Checker;
use netmodel::rule::Rule;
use netmodel::topology::LinkId;
use netmodel::trace::Op;
use std::time::Instant;
use veriflow_ri::{VeriflowConfig, VeriflowRi};
use workloads::{build, build_all, Dataset, DatasetId, ScaleProfile};

/// The consistent data plane used by the what-if experiments (§4.3.2): for
/// the synthetic and 4Switch datasets, all rule insertions; for the Airtel
/// datasets, the snapshot left after the whole trace (failures recovered).
pub fn data_plane_rules(ds: &Dataset) -> Vec<Rule> {
    match ds.id {
        DatasetId::Airtel1 | DatasetId::Airtel2 => ds.trace.final_data_plane(),
        _ => ds
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Insert(r) => Some(*r),
                Op::Remove(_) => None,
            })
            .collect(),
    }
}

/// Loads a data plane into a Delta-net checker with per-update checks off.
pub fn load_deltanet(ds: &Dataset, rules: &[Rule]) -> DeltaNet {
    let mut net = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for r in rules {
        net.insert_rule(*r);
    }
    net
}

/// Loads a data plane into a Veriflow-RI checker with per-update checks off.
pub fn load_veriflow(ds: &Dataset, rules: &[Rule]) -> VeriflowRi {
    let mut vf = VeriflowRi::new(
        ds.topology.topology.clone(),
        VeriflowConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for r in rules {
        vf.insert_rule(*r);
    }
    vf
}

/// **Table 2** — dataset sizes (nodes, links, operations).
pub fn table2(scale: ScaleProfile) -> String {
    let datasets = build_all(scale);
    let rows: Vec<Vec<String>> = datasets
        .iter()
        .map(|ds| {
            let row = ds.table2_row();
            vec![
                row.name,
                with_commas(row.nodes),
                with_commas(row.links),
                with_commas(row.operations),
                with_commas(row.peak_rules),
            ]
        })
        .collect();
    format!(
        "Table 2: Data sets used for evaluating Delta-net (scale: {scale:?})\n\n{}",
        render_table(
            &["Data set", "Nodes", "Max Links", "Operations", "Peak rules"],
            &rows
        )
    )
}

/// The per-dataset measurement behind Table 3 and Figure 8.
pub struct Table3Row {
    /// Dataset name.
    pub name: String,
    /// Total atoms after the replay.
    pub atoms: usize,
    /// Per-operation timing of Delta-net (update + loop check).
    pub timings: Timings,
    /// Operations that reported at least one forwarding loop.
    pub ops_with_loops: usize,
}

/// Runs Delta-net (with per-update loop checking) over every dataset.
pub fn run_table3(scale: ScaleProfile) -> Vec<Table3Row> {
    build_all(scale)
        .into_iter()
        .map(|ds| {
            let mut net = DeltaNet::new(ds.topology.topology.clone(), DeltaNetConfig::default());
            let result = replay_timed(&mut net, ds.trace.ops());
            Table3Row {
                name: ds.id.name().to_string(),
                atoms: net.atom_count(),
                timings: result.timings,
                ops_with_loops: result.ops_with_loops,
            }
        })
        .collect()
}

/// **Table 3** — total atoms, median/average per-update processing time and
/// the percentage of updates under 250 µs, per dataset.
pub fn table3(scale: ScaleProfile) -> (String, Vec<Table3Row>) {
    let rows = run_table3(scale);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = r.timings.summary();
            vec![
                r.name.clone(),
                with_commas(r.atoms),
                format!("{:.1}", s.median_us),
                format!("{:.1}", s.average_us),
                format!("{:.1}%", s.pct_under_250us),
                with_commas(s.count),
                with_commas(r.ops_with_loops),
            ]
        })
        .collect();
    let text = format!(
        "Table 3: Delta-net rule insertions and removals, incl. loop check (scale: {scale:?})\n\n{}",
        render_table(
            &[
                "Data set",
                "Total atoms",
                "Median (us)",
                "Average (us)",
                "< 250us",
                "Operations",
                "Ops w/ loops"
            ],
            &table_rows
        )
    );
    (text, rows)
}

/// **Figure 8** — the CDF of per-update processing times, as CSV plus an
/// ASCII rendering.
pub fn fig8(rows: &[Table3Row]) -> String {
    let points: Vec<f64> = (0..=50).map(|i| 10f64.powf(i as f64 * 0.1)).collect(); // 1 µs .. 100 ms
    let mut out = String::from("Figure 8: CDF of per-update processing time (microseconds)\n\n");
    out.push_str("CSV (one column per dataset):\nmicros");
    for r in rows {
        out.push_str(&format!(",{}", r.name.replace(' ', "")));
    }
    out.push('\n');
    let cdfs: Vec<Vec<(f64, f64)>> = rows.iter().map(|r| r.timings.cdf(&points)).collect();
    for (i, &p) in points.iter().enumerate() {
        out.push_str(&format!("{p:.1}"));
        for cdf in &cdfs {
            out.push_str(&format!(",{:.4}", cdf[i].1));
        }
        out.push('\n');
    }
    // ASCII plot: one row per dataset at selected percent-complete marks.
    out.push_str("\nASCII CDF (fraction of updates completed within t):\n");
    let marks = [
        1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10_000.0,
    ];
    let mut table_rows = Vec::new();
    for r in rows {
        let cdf = r.timings.cdf(&marks);
        let mut row = vec![r.name.clone()];
        row.extend(cdf.iter().map(|(_, f)| format!("{:.2}", f)));
        table_rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Data set".to_string())
        .chain(marks.iter().map(|m| format!("{m}us")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&render_table(&header_refs, &table_rows));
    out
}

/// How many link-failure queries to pose per dataset in Table 4.
const WHATIF_QUERIES_PER_DATASET: usize = 25;

/// **Table 4** — average "what if this link fails" query time for
/// Veriflow-RI, Delta-net, and Delta-net with loop checking.
pub fn table4(scale: ScaleProfile) -> String {
    let datasets = build_all(scale);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for ds in &datasets {
        let rules = data_plane_rules(ds);
        let net = load_deltanet(ds, &rules);
        let vf = load_veriflow(ds, &rules);

        // Query the most heavily used links (by Delta-net label size), which
        // is where the differences matter; the paper queries every link.
        let mut links: Vec<(LinkId, usize)> = ds
            .topology
            .topology
            .links()
            .iter()
            .map(|l| (l.id, net.label(l.id).len()))
            .filter(|&(_, n)| n > 0)
            .collect();
        links.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let queries: Vec<LinkId> = links
            .iter()
            .take(WHATIF_QUERIES_PER_DATASET)
            .map(|&(l, _)| l)
            .collect();
        if queries.is_empty() {
            continue;
        }

        let time_queries = |f: &dyn Fn(LinkId)| -> f64 {
            let start = Instant::now();
            for &l in &queries {
                f(l);
            }
            start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
        };
        let vf_ms = time_queries(&|l| {
            let _ = vf.what_if_link_failure(l, false);
        });
        let dn_ms = time_queries(&|l| {
            let _ = net.what_if_link_failure(l, false);
        });
        let dn_loops_ms = time_queries(&|l| {
            let _ = net.what_if_link_failure(l, true);
        });

        rows.push(vec![
            ds.id.name().to_string(),
            with_commas(rules.len()),
            format!("{vf_ms:.3}"),
            format!("{dn_ms:.3}"),
            format!("{dn_loops_ms:.3}"),
            format!("{:.1}x", vf_ms / dn_ms.max(1e-6)),
        ]);
    }
    format!(
        "Table 4: link-failure \"what if\" queries, average per-query time in ms \
         ({WHATIF_QUERIES_PER_DATASET} most-used links per data plane, scale: {scale:?})\n\n{}",
        render_table(
            &[
                "Data plane",
                "Rules",
                "Veriflow-RI (ms)",
                "Delta-net (ms)",
                "+Loops (ms)",
                "Speed-up"
            ],
            &rows
        )
    )
}

/// **Table 5 / Appendix D** — memory usage of Delta-net and Veriflow-RI on
/// the consistent data planes.
pub fn table5(scale: ScaleProfile) -> String {
    let datasets = build_all(scale);
    let mut rows = Vec::new();
    for ds in &datasets {
        let rules = data_plane_rules(ds);
        let net = load_deltanet(ds, &rules);
        let vf = load_veriflow(ds, &rules);
        let dn_bytes = net.memory_bytes();
        let vf_bytes = vf.memory_bytes();
        rows.push(vec![
            ds.id.name().to_string(),
            with_commas(rules.len()),
            megabytes(vf_bytes),
            megabytes(dn_bytes),
            format!("{:.1}x", dn_bytes as f64 / vf_bytes.max(1) as f64),
        ]);
    }
    format!(
        "Table 5 (Appendix D): estimated memory usage in MB (scale: {scale:?})\n\n{}",
        render_table(
            &[
                "Data set",
                "Rules",
                "Veriflow-RI (MB)",
                "Delta-net (MB)",
                "Ratio"
            ],
            &rows
        )
    )
}

/// **Appendix C** — the maximum number of equivalence classes affected by a
/// single rule insertion when Veriflow-RI runs on the RF 1755 dataset,
/// contrasted with Delta-net's affected atoms on the same trace.
pub fn appendix_c(scale: ScaleProfile) -> String {
    let ds = build(DatasetId::Rf1755, scale);
    // Only the insertion phase, as in the original experiment.
    let inserts: Vec<Op> = ds
        .trace
        .ops()
        .iter()
        .copied()
        .filter(|op| op.is_insert())
        .collect();
    let mut vf = VeriflowRi::new(
        ds.topology.topology.clone(),
        VeriflowConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    let vf_result = replay_timed(&mut vf, &inserts);
    let mut net = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    let dn_result = replay_timed(&mut net, &inserts);
    format!(
        "Appendix C: RF 1755 insertion phase (scale: {scale:?})\n\n{}",
        render_table(
            &["Metric", "Veriflow-RI", "Delta-net"],
            &[
                vec![
                    "Max classes affected by one insert".to_string(),
                    with_commas(vf_result.max_affected_classes),
                    with_commas(dn_result.max_affected_classes),
                ],
                vec![
                    "Average insert time (us)".to_string(),
                    format!("{:.1}", vf_result.timings.summary().average_us),
                    format!("{:.1}", dn_result.timings.summary().average_us),
                ],
                vec![
                    "Final packet classes".to_string(),
                    with_commas(vf_result.final_class_count),
                    with_commas(dn_result.final_class_count),
                ],
            ]
        )
    )
}

/// The shared summary-statistics fields of the machine-readable reports
/// (`BENCH_*.json` and `deltanet replay --json` use the same key set).
pub fn summary_json(s: &Summary) -> Vec<(&'static str, Json)> {
    vec![
        ("operations", Json::int(s.count)),
        ("median_us", Json::ms(s.median_us)),
        ("average_us", Json::ms(s.average_us)),
        ("max_us", Json::ms(s.max_us)),
        ("pct_under_250us", Json::ms(s.pct_under_250us)),
        ("total_seconds", Json::ms(s.total_seconds)),
    ]
}

/// The `meta` block every machine-readable report carries: the revision
/// that produced the numbers, the machine shape (`available_parallelism`),
/// the cargo profile, the scale profile, and the emitter's dataset
/// parameters. Committed baselines are only comparable when these agree —
/// the CI perf-smoke regression gate keys off `available_parallelism`
/// before trusting a timing diff.
pub fn meta_json(scale: ScaleProfile, dataset_params: Vec<(&'static str, Json)>) -> Json {
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut fields = vec![
        ("git_rev", Json::str(git_rev)),
        ("available_parallelism", Json::int(available)),
        (
            "cargo_profile",
            Json::str(if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }),
        ),
        ("scale", Json::str(format!("{scale:?}").to_lowercase())),
    ];
    fields.extend(dataset_params);
    Json::obj(fields)
}

/// The `updates` section of the JSON report: per-dataset replay of the full
/// trace (inserts + removals, per-update loop check on) with Table-3 style
/// summary statistics plus final memory.
pub fn updates_json(scale: ScaleProfile) -> Json {
    let rows = build_all(scale)
        .into_iter()
        .map(|ds| {
            let mut net = DeltaNet::new(ds.topology.topology.clone(), DeltaNetConfig::default());
            let result = replay_timed(&mut net, ds.trace.ops());
            let mut fields = vec![("dataset", Json::str(ds.id.name()))];
            fields.extend(summary_json(&result.timings.summary()));
            fields.extend([
                ("ops_with_loops", Json::int(result.ops_with_loops)),
                ("atoms", Json::int(net.atom_count())),
                ("memory_bytes", Json::int(result.final_memory_bytes)),
            ]);
            Json::obj(fields)
        })
        .collect::<Vec<_>>();
    Json::arr(rows)
}

/// The `insert_hot_path` section: pure rule insertions (per-update checks
/// off) on the two most split-heavy data planes, with the owner/label
/// structure sizes the arena refactor targets.
pub fn insert_hot_path_json(scale: ScaleProfile) -> Json {
    let rows = [DatasetId::Berkeley, DatasetId::FourSwitch]
        .into_iter()
        .map(|id| {
            let ds = build(id, scale);
            let rules = data_plane_rules(&ds);
            // Fastest of three runs keeps committed baselines stable; only
            // the insert loop is timed, not engine construction.
            let mut total_ms = f64::INFINITY;
            let mut net = None;
            for _ in 0..3 {
                let mut candidate = DeltaNet::new(
                    ds.topology.topology.clone(),
                    DeltaNetConfig {
                        check_loops_per_update: false,
                        ..Default::default()
                    },
                );
                let start = Instant::now();
                for r in &rules {
                    candidate.insert_rule(*r);
                }
                total_ms = total_ms.min(start.elapsed().as_secs_f64() * 1e3);
                net = Some(candidate);
            }
            let net = net.expect("at least one run");
            Json::obj([
                ("dataset", Json::str(id.name())),
                ("rules", Json::int(rules.len())),
                ("total_ms", Json::ms(total_ms)),
                (
                    "us_per_insert",
                    Json::ms(total_ms * 1e3 / rules.len().max(1) as f64),
                ),
                ("atoms", Json::int(net.atom_count())),
                ("owner_entries", Json::int(net.owner().total_entries())),
                (
                    "owner_spilled_cells",
                    Json::int(net.owner().spilled_cells()),
                ),
                ("owner_bytes", Json::int(net.owner().memory_bytes())),
                ("label_bytes", Json::int(net.labels().memory_bytes())),
                ("label_live_bytes", Json::int(net.labels().live_bytes())),
                ("memory_bytes", Json::int(net.memory_estimate())),
            ])
        })
        .collect::<Vec<_>>();
    Json::arr(rows)
}

/// One point of the churn memory trajectory: every size the compaction
/// pass is supposed to bring back down, next to the live rule/atom counts
/// that justify it.
pub fn memory_snapshot(net: &DeltaNet) -> Json {
    Json::obj([
        ("rules", Json::int(net.rule_count())),
        ("atoms", Json::int(net.atom_count())),
        ("allocated_atoms", Json::int(net.allocated_atoms())),
        ("reclaimable_bounds", Json::int(net.reclaimable_bounds())),
        ("memory_bytes", Json::int(net.memory_estimate())),
        ("live_bytes", Json::int(net.live_bytes())),
        ("label_live_bytes", Json::int(net.labels().live_bytes())),
        ("owner_bytes", Json::int(net.owner().memory_bytes())),
    ])
}

/// The `churn` section of the JSON report: the flapping-prefix churn
/// workload replayed twice — compaction off (the paper's
/// monotonically-growing behaviour) and with the automatic threshold — with
/// memory snapshots at the pre-churn baseline, after the churn, and after a
/// final explicit [`DeltaNet::compact`], plus the per-op peak of the
/// atom-id table. The committed `BENCH_PR3.json` acceptance is read off
/// this section: `after_final_compact.allocated_atoms` and `.live_bytes`
/// return to the pre-churn baseline.
pub fn churn_json(scale: ScaleProfile) -> Json {
    let topology = workloads::churn::churn_topology();
    let config = scale.churn_config();
    let churn = workloads::churn::flapping_churn(&topology, config);
    let (baseline_trace, churn_trace) = churn.trace.split_at(churn.baseline_ops);
    // One flap wave's worth of garbage: compaction amortizes to roughly
    // once per cycle instead of once per removal.
    let threshold = 2 * config.flapping_prefixes;

    let run = |compact_threshold: Option<usize>| -> Json {
        let mut net = DeltaNet::new(
            topology.topology.clone(),
            DeltaNetConfig {
                check_loops_per_update: false,
                compact_threshold,
                ..Default::default()
            },
        );
        net.replay(baseline_trace.ops());
        let baseline = memory_snapshot(&net);
        let start = Instant::now();
        let mut peak_allocated = net.allocated_atoms();
        for op in churn_trace.ops() {
            net.apply(op);
            peak_allocated = peak_allocated.max(net.allocated_atoms());
        }
        let churn_ms = start.elapsed().as_secs_f64() * 1e3;
        let after_churn = memory_snapshot(&net);
        let final_pass = net.compact();
        Json::obj([
            (
                "compact_threshold",
                compact_threshold.map_or(Json::Null, Json::int),
            ),
            ("churn_ms", Json::ms(churn_ms)),
            ("peak_allocated_atoms", Json::int(peak_allocated)),
            ("compactions", Json::int(net.compactions())),
            ("final_merged_atoms", Json::int(final_pass.merged_atoms)),
            ("baseline", baseline),
            ("after_churn", after_churn),
            ("after_final_compact", memory_snapshot(&net)),
        ])
    };

    Json::obj([
        (
            "meta",
            meta_json(
                scale,
                vec![
                    ("dataset", Json::str("Churn")),
                    ("stable_prefixes", Json::int(config.stable_prefixes)),
                    ("flapping_prefixes", Json::int(config.flapping_prefixes)),
                    ("cycles", Json::int(config.cycles)),
                    ("seed", Json::int(config.seed as usize)),
                ],
            ),
        ),
        ("dataset", Json::str("Churn")),
        ("operations", Json::int(churn.trace.len())),
        ("baseline_ops", Json::int(churn.baseline_ops)),
        ("no_compaction", run(None)),
        ("auto_compaction", run(Some(threshold))),
    ])
}

/// The `monitor` section of the JSON report: the churn workload replayed
/// twice to compare the two ways of answering "which violations exist right
/// now?" after every operation —
///
/// * **incremental**: a monitored engine
///   ([`DeltaNetConfig::monitor_violations`]); per-update maintenance cost
///   is timed, and (outside the timed section) the maintained state is
///   audited against full scans after every op, so the emitted
///   `mismatches` / `counts_match` fields prove incremental == full-scan;
/// * **rescan**: a plain engine calling `check_all_loops` +
///   `check_all_blackholes` after every op — the O(plane) baseline.
///
/// The committed `BENCH_PR5.json` acceptance (`speedup` ≥ 5, `mismatches`
/// = 0) is read off this section.
pub fn monitor_churn_json(scale: ScaleProfile) -> Json {
    let topology = workloads::churn::churn_topology();
    let config = scale.churn_config();
    let churn = workloads::churn::flapping_churn(&topology, config);
    let ops = churn.trace.ops();

    // Incremental run: only the monitored apply is timed; the per-op
    // equality audit (itself a pair of full scans) runs outside the timer.
    let mut net = DeltaNet::new(
        topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            monitor_violations: true,
            ..Default::default()
        },
    );
    let mut incremental_s = 0f64;
    let mut mismatches = 0usize;
    let mut transitions = 0usize;
    for op in ops {
        let start = Instant::now();
        net.apply(op);
        incremental_s += start.elapsed().as_secs_f64();
        transitions += net.monitor().map_or(0, |m| m.last_events().len());
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        if net.active_violations().expect("monitoring is on") != expect {
            mismatches += 1;
        }
    }
    let monitor = net.monitor().expect("monitoring is on");
    let (inc_loops, inc_holes) = (monitor.loop_count(), monitor.blackhole_count());

    // Rescan baseline: apply + both full scans, all timed.
    let mut net = DeltaNet::new(
        topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    let mut rescan_s = 0f64;
    let mut scan_loops = 0usize;
    let mut scan_holes = 0usize;
    for op in ops {
        let start = Instant::now();
        net.apply(op);
        scan_loops = net.check_all_loops().len();
        scan_holes = net.check_all_blackholes().len();
        rescan_s += start.elapsed().as_secs_f64();
    }

    let counts_match = mismatches == 0 && inc_loops == scan_loops && inc_holes == scan_holes;
    Json::obj([
        ("schema", Json::str("deltanet-monitor-v1")),
        (
            "meta",
            meta_json(
                scale,
                vec![
                    ("dataset", Json::str("Churn")),
                    ("stable_prefixes", Json::int(config.stable_prefixes)),
                    ("flapping_prefixes", Json::int(config.flapping_prefixes)),
                    ("cycles", Json::int(config.cycles)),
                    ("seed", Json::int(config.seed as usize)),
                ],
            ),
        ),
        ("dataset", Json::str("Churn")),
        ("operations", Json::int(ops.len())),
        ("incremental_ms", Json::ms(incremental_s * 1e3)),
        ("rescan_ms", Json::ms(rescan_s * 1e3)),
        ("speedup", Json::ms(rescan_s / incremental_s.max(1e-9))),
        (
            "incremental_us_per_op",
            Json::ms(incremental_s * 1e6 / ops.len().max(1) as f64),
        ),
        (
            "rescan_us_per_op",
            Json::ms(rescan_s * 1e6 / ops.len().max(1) as f64),
        ),
        ("violation_transitions", Json::int(transitions)),
        ("mismatches", Json::int(mismatches)),
        ("counts_match", Json::Bool(counts_match)),
        ("final_loops_incremental", Json::int(inc_loops)),
        ("final_loops_rescan", Json::int(scan_loops)),
        ("final_blackholes_incremental", Json::int(inc_holes)),
        ("final_blackholes_rescan", Json::int(scan_holes)),
        ("final_atoms", Json::int(net.atom_count())),
    ])
}

/// Order-, atom-numbering- and shard-invariant comparison form of a
/// violation set: loops keyed by their (already canonical) node cycle and
/// blackholes keyed by node, packets normalized.
type MfLoops =
    std::collections::BTreeMap<Vec<netmodel::topology::NodeId>, Vec<netmodel::interval::Interval>>;
type MfHoles =
    std::collections::BTreeMap<netmodel::topology::NodeId, Vec<netmodel::interval::Interval>>;

fn mf_comparison_form(violations: &[netmodel::checker::InvariantViolation]) -> (MfLoops, MfHoles) {
    use netmodel::checker::InvariantViolation;
    use netmodel::interval::normalize;
    let mut loops: std::collections::BTreeMap<_, Vec<_>> = std::collections::BTreeMap::new();
    let mut holes: std::collections::BTreeMap<_, Vec<_>> = std::collections::BTreeMap::new();
    for v in violations {
        match v {
            InvariantViolation::ForwardingLoop { nodes, packets } => {
                loops
                    .entry(nodes.clone())
                    .or_default()
                    .extend(packets.clone());
            }
            InvariantViolation::Blackhole { node, packets } => {
                holes.entry(*node).or_default().extend(packets.clone());
            }
        }
    }
    for packets in loops.values_mut() {
        *packets = normalize(std::mem::take(packets));
    }
    for packets in holes.values_mut() {
        *packets = normalize(std::mem::take(packets));
    }
    (loops, holes)
}

/// The `multifield` section: the ACL-style dst × src workload replayed
/// through the multi-field engine at 1/2/4 shards and stand-alone, with the
/// live monitor on, differentially checked against the extended Veriflow-RI
/// cross-product oracle ([`veriflow_ri::scan_multifield`]) and the engine's
/// own full rescans every few operations. `mismatches` must be 0.
pub fn multifield_json(scale: ScaleProfile) -> Json {
    use veriflow_ri::scan_multifield;
    use workloads::rulegen::{generate_multifield_rules, MultiFieldConfig};

    let (ring_size, n_prefixes, check_every) = match scale {
        ScaleProfile::Tiny => (4, 8, 8),
        ScaleProfile::Small => (6, 24, 24),
        ScaleProfile::Medium => (8, 64, 64),
    };
    let topo = workloads::topologies::ring_with_borders("mf", ring_size);
    let prefixes = workloads::bgp::generate_prefixes(workloads::bgp::PrefixGenConfig {
        count: n_prefixes,
        ..Default::default()
    });
    let mf = MultiFieldConfig {
        sec_widths: vec![8],
        acl_per_prefix: 2,
        constrain_fraction: 0.7,
        seed: 0xACD5 ^ n_prefixes as u64,
        append_removals: true,
    };
    let gen = generate_multifield_rules(&topo, &prefixes, &mf);
    let ops = gen.trace.ops();
    let config = DeltaNetConfig {
        check_loops_per_update: true,
        monitor_violations: true,
        compact_threshold: Some(256),
        ..Default::default()
    }
    .with_secondary(&gen.sec_widths);

    let mut engine_sections: Vec<(String, Json)> = Vec::new();
    let mut mismatches = 0usize;
    let mut checks = 0usize;
    for shards in [0usize, 1, 2, 4] {
        let mut single: Option<DeltaNet> = None;
        let mut sharded: Option<ShardedDeltaNet> = None;
        if shards == 0 {
            single = Some(DeltaNet::new(gen.topology.clone(), config));
        } else {
            sharded = Some(ShardedDeltaNet::new(gen.topology.clone(), config, shards));
        }
        let mut live: Vec<Rule> = Vec::new();
        let mut elapsed_s = 0f64;
        for (i, op) in ops.iter().enumerate() {
            let start = Instant::now();
            match (&mut single, &mut sharded) {
                (Some(net), _) => {
                    net.apply(op);
                }
                (_, Some(net)) => {
                    net.apply(op);
                }
                _ => unreachable!(),
            }
            elapsed_s += start.elapsed().as_secs_f64();
            match op {
                Op::Insert(rule) => live.push(*rule),
                Op::Remove(id) => live.retain(|r| r.id != *id),
            }
            if (i + 1) % check_every != 0 && i + 1 != ops.len() {
                continue;
            }
            checks += 1;
            let (mut scan, active) = match (&single, &sharded) {
                (Some(net), _) => (net.check_all_loops(), net.active_violations()),
                (_, Some(net)) => (net.check_all_loops(), net.active_violations()),
                _ => unreachable!(),
            };
            match (&single, &sharded) {
                (Some(net), _) => scan.extend(net.check_all_blackholes()),
                (_, Some(net)) => scan.extend(net.check_all_blackholes()),
                _ => unreachable!(),
            }
            let oracle = scan_multifield(&gen.topology, &live, config.field_width, &gen.sec_widths);
            if mf_comparison_form(&scan) != mf_comparison_form(&oracle) {
                mismatches += 1;
            }
            if let Some(active) = active {
                if mf_comparison_form(&active) != mf_comparison_form(&scan) {
                    mismatches += 1;
                }
            }
        }
        let (atoms, rules) = match (&single, &sharded) {
            (Some(net), _) => (net.atom_count(), net.rule_count()),
            (_, Some(net)) => (net.atom_count(), net.rule_count()),
            _ => unreachable!(),
        };
        let label = if shards == 0 {
            "single".to_string()
        } else {
            format!("shards_{shards}")
        };
        engine_sections.push((
            label,
            Json::obj([
                (
                    "us_per_op",
                    Json::ms(elapsed_s * 1e6 / ops.len().max(1) as f64),
                ),
                ("final_atoms", Json::int(atoms)),
                ("final_rules", Json::int(rules)),
            ]),
        ));
    }
    let engines = Json::obj(engine_sections);

    Json::obj([
        ("schema", Json::str("deltanet-multifield-v1")),
        ("meta", mf_meta_json(scale, ring_size, n_prefixes, &mf)),
        ("dataset", Json::str("ACL dst x src")),
        ("header_space", Json::str("[dst:32, src:8]")),
        ("operations", Json::int(ops.len())),
        ("acl_rules", Json::int(prefixes.len() * mf.acl_per_prefix)),
        ("differential_checks", Json::int(checks)),
        ("mismatches", Json::int(mismatches)),
        ("counts_match", Json::Bool(mismatches == 0)),
        ("engines", engines),
    ])
}

/// The shared `meta` block of the multi-field emitters: the ACL dst × src
/// generator parameters next to the machine/profile fields.
fn mf_meta_json(
    scale: ScaleProfile,
    ring_size: usize,
    n_prefixes: usize,
    mf: &workloads::rulegen::MultiFieldConfig,
) -> Json {
    meta_json(
        scale,
        vec![
            ("dataset", Json::str("ACL dst x src")),
            ("ring_size", Json::int(ring_size)),
            ("prefixes", Json::int(n_prefixes)),
            ("acl_per_prefix", Json::int(mf.acl_per_prefix)),
            (
                "sec_widths",
                Json::arr(mf.sec_widths.iter().map(|&w| Json::int(w as usize))),
            ),
            ("constrain_fraction", Json::ms(mf.constrain_fraction)),
            ("seed", Json::int(mf.seed as usize)),
            ("append_removals", Json::Bool(mf.append_removals)),
        ],
    )
}

/// The `multifield_monitor` section (BENCH_PR9.json): the monitored ACL
/// dst × src churn on the stand-alone engine, incremental slice repair vs
/// the per-update full-plane rescan it replaces.
///
/// * **incremental**: a monitored multi-field engine; only the apply is
///   timed. Outside the timed section, after *every* op the maintained
///   [`DeltaNet::active_violations`] is cross-checked against the engine's
///   own full rescans in the order- and numbering-invariant comparison
///   form — `cross_checks` counts the audits and `mismatches` must be 0.
/// * **rescan**: the same engine with monitoring off, paying apply + both
///   full cross-field scans per op — the cost shape of the pre-incremental
///   monitored path (`BENCH_PR8.json`'s 2718 µs/op single-shard entry).
///
/// `single_field_churn_us_per_op` replays the single-field flapping-churn
/// workload (checks off) in the same process, pinning that the multi-field
/// machinery did not tax the fast path.
pub fn multifield_monitor_json(scale: ScaleProfile) -> Json {
    use workloads::rulegen::{generate_multifield_rules, MultiFieldConfig};

    let (ring_size, n_prefixes) = match scale {
        ScaleProfile::Tiny => (4, 8),
        ScaleProfile::Small => (6, 24),
        ScaleProfile::Medium => (8, 64),
    };
    let topo = workloads::topologies::ring_with_borders("mf", ring_size);
    let prefixes = workloads::bgp::generate_prefixes(workloads::bgp::PrefixGenConfig {
        count: n_prefixes,
        ..Default::default()
    });
    let mf = MultiFieldConfig {
        sec_widths: vec![8],
        acl_per_prefix: 2,
        constrain_fraction: 0.7,
        seed: 0xACD5 ^ n_prefixes as u64,
        append_removals: true,
    };
    let gen = generate_multifield_rules(&topo, &prefixes, &mf);
    let ops = gen.trace.ops();
    let config = DeltaNetConfig {
        check_loops_per_update: true,
        compact_threshold: Some(256),
        ..Default::default()
    }
    .with_secondary(&gen.sec_widths);

    // Incremental run: scoped slice repair keeps the monitor current; only
    // the apply is timed, the per-op audit runs outside the timer.
    let mut net = DeltaNet::new(
        gen.topology.clone(),
        DeltaNetConfig {
            monitor_violations: true,
            ..config
        },
    );
    let mut incremental_s = 0f64;
    let mut cross_checks = 0usize;
    let mut mismatches = 0usize;
    let mut transitions = 0usize;
    for op in ops {
        let start = Instant::now();
        net.apply(op);
        incremental_s += start.elapsed().as_secs_f64();
        transitions += net.monitor().map_or(0, |m| m.last_events().len());
        let mut expect = net.check_all_loops();
        expect.extend(net.check_all_blackholes());
        let active = net.active_violations().expect("monitoring is on");
        cross_checks += 1;
        if mf_comparison_form(&active) != mf_comparison_form(&expect) {
            mismatches += 1;
        }
    }
    let monitor = net.monitor().expect("monitoring is on");
    let (inc_loops, inc_holes) = (monitor.loop_count(), monitor.blackhole_count());
    let final_atoms = net.atom_count();

    // Rescan baseline: apply + both full cross-field scans, all timed.
    let mut net = DeltaNet::new(gen.topology.clone(), config);
    let mut rescan_s = 0f64;
    let mut scan_loops = 0usize;
    let mut scan_holes = 0usize;
    for op in ops {
        let start = Instant::now();
        net.apply(op);
        scan_loops = net.check_all_loops().len();
        scan_holes = net.check_all_blackholes().len();
        rescan_s += start.elapsed().as_secs_f64();
    }
    let counts_match = mismatches == 0 && inc_loops == scan_loops && inc_holes == scan_holes;

    // Single-field fast-path guard: the flapping churn replay, checks off.
    let churn_topology = workloads::churn::churn_topology();
    let churn = workloads::churn::flapping_churn(&churn_topology, scale.churn_config());
    let mut churn_net = DeltaNet::new(
        churn_topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    let churn_start = Instant::now();
    for op in churn.trace.ops() {
        churn_net.apply(op);
    }
    let churn_s = churn_start.elapsed().as_secs_f64();

    let per_op = |total_s: f64| total_s * 1e6 / ops.len().max(1) as f64;
    Json::obj([
        ("schema", Json::str("deltanet-multifield-monitor-v1")),
        ("meta", mf_meta_json(scale, ring_size, n_prefixes, &mf)),
        ("dataset", Json::str("ACL dst x src")),
        ("header_space", Json::str("[dst:32, src:8]")),
        ("engine", Json::str("single")),
        ("operations", Json::int(ops.len())),
        ("acl_rules", Json::int(prefixes.len() * mf.acl_per_prefix)),
        ("incremental_ms", Json::ms(incremental_s * 1e3)),
        ("rescan_ms", Json::ms(rescan_s * 1e3)),
        ("speedup", Json::ms(rescan_s / incremental_s.max(1e-9))),
        ("incremental_us_per_op", Json::ms(per_op(incremental_s))),
        ("rescan_us_per_op", Json::ms(per_op(rescan_s))),
        ("cross_checks", Json::int(cross_checks)),
        ("mismatches", Json::int(mismatches)),
        ("counts_match", Json::Bool(counts_match)),
        ("violation_transitions", Json::int(transitions)),
        ("final_loops_incremental", Json::int(inc_loops)),
        ("final_loops_rescan", Json::int(scan_loops)),
        ("final_blackholes_incremental", Json::int(inc_holes)),
        ("final_blackholes_rescan", Json::int(scan_holes)),
        ("final_atoms", Json::int(final_atoms)),
        ("single_field_churn_ops", Json::int(churn.trace.len())),
        (
            "single_field_churn_us_per_op",
            Json::ms(churn_s * 1e6 / churn.trace.len().max(1) as f64),
        ),
    ])
}

/// The `microbench` section: the owner-representation comparison (see
/// [`crate::ownerbench`]) at a rule count scaled to the profile — at least
/// 10k rules from `small` upwards so the committed numbers exercise the
/// regime the paper's real-time claim targets.
pub fn microbench_json(scale: ScaleProfile) -> Json {
    let (rules, runs) = match scale {
        ScaleProfile::Tiny => (2_000, 2),
        ScaleProfile::Small => (40_000, 3),
        ScaleProfile::Medium => (80_000, 3),
    };
    let mut report = owner_bench_json(&owner_microbench(rules, 8, 42, runs));
    if let Json::Obj(fields) = &mut report {
        fields.insert(
            0,
            (
                "meta".to_string(),
                meta_json(
                    scale,
                    vec![
                        ("dataset", Json::str("owner microbench")),
                        ("rules", Json::int(rules)),
                        ("runs", Json::int(runs)),
                        ("seed", Json::int(42)),
                    ],
                ),
            ),
        );
    }
    report
}

/// Renders one [`OwnerBenchResult`] as JSON.
pub fn owner_bench_json(r: &OwnerBenchResult) -> Json {
    Json::obj([
        ("rules", Json::int(r.rules)),
        ("atoms", Json::int(r.atoms)),
        ("atom_clones", Json::int(r.atom_clones)),
        ("insert_ops", Json::int(r.insert_ops)),
        ("remove_ops", Json::int(r.remove_ops)),
        (
            "owner_arena_smallvec",
            Json::obj([
                ("insert_ms", Json::ms(r.arena_smallvec.insert_ms)),
                ("remove_ms", Json::ms(r.arena_smallvec.remove_ms)),
            ]),
        ),
        (
            "owner_hashmap_btree",
            Json::obj([
                ("insert_ms", Json::ms(r.hashmap_btree.insert_ms)),
                ("remove_ms", Json::ms(r.hashmap_btree.remove_ms)),
            ]),
        ),
        ("insert_speedup", Json::ms(r.insert_speedup())),
        ("remove_speedup", Json::ms(r.remove_speedup())),
    ])
}

/// The shard-scaling experiment: the full update trace of the Berkeley and
/// churn workloads applied through [`ShardedDeltaNet::apply_batch`] at each
/// requested shard count, per-update checks off so the measured quantity is
/// pure update throughput. `speedup_vs_first` is relative to the first
/// entry of `shard_counts` (conventionally 1 shard). Each result carries
/// per-shard atom/byte fields, and the report records the machine's
/// `available_parallelism` and the effective worker count, because the
/// scaling curve is only meaningful relative to the cores that ran it —
/// on a single-core machine the curve is flat by construction.
pub fn shard_scaling_json(scale: ScaleProfile, shard_counts: &[usize], batch: usize) -> Json {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut results = Vec::new();
    for id in [DatasetId::Berkeley, DatasetId::Churn] {
        let ds = build(id, scale);
        let ops = ds.trace.ops();
        let mut baseline_ops_per_sec: Option<f64> = None;
        for &shards in shard_counts {
            // Fastest of two runs keeps committed baselines stable.
            let mut best_ms = f64::INFINITY;
            let mut net = None;
            for _ in 0..2 {
                let mut candidate = ShardedDeltaNet::new(
                    ds.topology.topology.clone(),
                    DeltaNetConfig {
                        check_loops_per_update: false,
                        ..Default::default()
                    },
                    shards,
                );
                let start = Instant::now();
                for window in ops.chunks(batch) {
                    candidate
                        .apply_batch(window)
                        .expect("generated traces are well-formed");
                }
                best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
                net = Some(candidate);
            }
            let net = net.expect("at least one run");
            let ops_per_sec = ops.len() as f64 / (best_ms / 1e3).max(1e-9);
            let baseline = *baseline_ops_per_sec.get_or_insert(ops_per_sec);
            let per_shard: Vec<Json> = net
                .shards()
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    Json::obj([
                        ("shard", Json::int(i)),
                        ("rules", Json::int(shard.rule_count())),
                        ("atoms", Json::int(shard.owned_atom_count())),
                        ("allocated_atoms", Json::int(shard.allocated_atoms())),
                        ("live_bytes", Json::int(shard.live_bytes())),
                    ])
                })
                .collect();
            results.push(Json::obj([
                ("dataset", Json::str(id.name())),
                ("shards", Json::int(shards)),
                ("operations", Json::int(ops.len())),
                ("total_ms", Json::ms(best_ms)),
                ("ops_per_sec", Json::ms(ops_per_sec)),
                ("speedup_vs_first", Json::ms(ops_per_sec / baseline)),
                ("classes", Json::int(net.class_count())),
                ("live_bytes", Json::int(net.live_bytes())),
                ("per_shard", Json::arr(per_shard)),
            ]));
        }
    }
    Json::obj([
        ("schema", Json::str("deltanet-shards-v1")),
        (
            "meta",
            meta_json(
                scale,
                vec![
                    ("datasets", Json::str("Berkeley, Churn")),
                    (
                        "shard_counts",
                        Json::arr(shard_counts.iter().map(|&s| Json::int(s))),
                    ),
                    ("batch", Json::int(batch)),
                ],
            ),
        ),
        ("scale", Json::str(format!("{scale:?}").to_lowercase())),
        ("batch", Json::int(batch)),
        ("workers", Json::int(Parallelism::from_env().workers())),
        ("available_parallelism", Json::int(available)),
        ("results", Json::arr(results)),
    ])
}

/// The `persist` section (BENCH_PR6.json / BENCH_PR7.json): write-path
/// overhead of the append-only delta log on the flapping-prefix churn
/// workload, plus an end-to-end snapshot + crash-recovery audit.
///
/// Replays of the same trace in windows of 64 ops:
///
/// * **unlogged**: a plain engine applying each window;
/// * **durability sweep**: the same engine behind [`LoggedNet`] at each
///   [`Durability`] level — ops are encoded into the write-behind buffer as
///   they apply and flushed once per window at that level's guarantee
///   (buffered: nothing hits the file until the final sync; flush: write,
///   no fsync; fsync: write + fsync). The flush run doubles as the
///   recovery fixture: a snapshot is taken (outside the timed section) at
///   its halfway point.
///
/// Afterwards the flush run is recovered from the half-way snapshot plus
/// the log tail, and `round_trip_equal` reports whether the recovered
/// engine matches the live one on rules, atoms, `live_bytes`, and full
/// loop + blackhole rescans. `truncated_log_error` /
/// `corrupted_snapshot_error` prove that damaged artifacts fail with clean
/// errors rather than panics or silent misreads. Finally the trace is
/// replayed through a [`CheckpointManager`], the newest log segment's tail
/// is torn mid-record, and a [`RecoveryPolicy::RepairTail`] recovery is
/// timed (`recovery_ms`): `repaired_tail_ops` counts what the torn segment
/// still salvaged and `recovery_bit_identical` checks the recovered state
/// digest against the live engine's.
pub fn persist_churn_json(scale: ScaleProfile) -> Json {
    // Group-commit window: every run (unlogged and logged alike) applies,
    // logs, and flushes in windows of this many ops. Durability is paid per
    // window, so this is the knob that amortizes the fsync cost: a ~0.5 ms
    // ext4 fdatasync spreads to ~0.13 µs/op at 4096 ops per commit, and at
    // ~0.6 µs/op replay speed the window still only adds ~2.5 ms of
    // batching latency before an update is acknowledged durable. Reported
    // as `commit_window` so the amortization is explicit.
    const WINDOW: usize = 4096;
    let topology = workloads::churn::churn_topology();
    let config = scale.churn_config();
    let churn = workloads::churn::flapping_churn(&topology, config);
    let ops = churn.trace.ops();
    let engine_config = DeltaNetConfig {
        check_loops_per_update: false,
        ..Default::default()
    };

    // Unlogged baseline.
    let mut plain = PersistNet::Single(Box::new(DeltaNet::new(
        topology.topology.clone(),
        engine_config,
    )));
    let mut unlogged_s = 0f64;
    for chunk in ops.chunks(WINDOW) {
        let start = Instant::now();
        plain
            .apply_batch(chunk)
            .expect("churn trace replays cleanly");
        unlogged_s += start.elapsed().as_secs_f64();
    }

    // Durability sweep: one logged run per level, one flush per window.
    // The flush (default) run is also the recovery fixture, snapshotted at
    // the halfway point (snapshotting itself is not timed).
    let dir = std::env::temp_dir().join(format!("deltanet-bench-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let log_path = dir.join("churn.dnlog");
    let snap_path = dir.join("churn.snap");
    let half = ops.len() / 2;
    let mut snapshot_bytes = 0usize;
    let mut snapshot_at = 0usize;
    let mut sweep = Vec::new();
    let mut logged_s = 0f64;
    let mut fsync_s = 0f64;
    let mut live = None;
    for durability in [
        Durability::Buffered,
        Durability::FlushPerBatch,
        Durability::FsyncPerBatch,
    ] {
        let is_default = durability == Durability::default();
        let path = if is_default {
            log_path.clone()
        } else {
            dir.join(format!("churn-{}.dnlog", durability.name()))
        };
        let net = PersistNet::Single(Box::new(DeltaNet::new(
            topology.topology.clone(),
            engine_config,
        )));
        let mut logged = LoggedNet::with_backend(net, Box::new(FsBackend), &path, 0, durability)
            .expect("create delta log");
        let mut total_s = 0f64;
        let mut done = 0usize;
        for chunk in ops.chunks(WINDOW) {
            let start = Instant::now();
            logged
                .apply_batch(chunk)
                .expect("churn trace replays cleanly");
            total_s += start.elapsed().as_secs_f64();
            done += chunk.len();
            if is_default && snapshot_at == 0 && done >= half {
                let snap = logged.snapshot().expect("snapshot the half-way state");
                let bytes = snap.to_bytes();
                snapshot_bytes = bytes.len();
                snapshot_at = done;
                std::fs::write(&snap_path, &bytes).expect("write snapshot");
            }
        }
        logged.sync().expect("final log sync");
        sweep.push((
            durability.name(),
            Json::ms(total_s * 1e6 / ops.len().max(1) as f64),
        ));
        let net = logged.into_net().expect("close the delta log");
        match durability {
            Durability::FlushPerBatch => {
                logged_s = total_s;
                live = Some(net);
            }
            Durability::FsyncPerBatch => fsync_s = total_s,
            Durability::Buffered => {}
        }
    }
    let live = live.expect("the flush run produced the fixture engine");

    // Recovery: half-way snapshot + log tail must reproduce the live state.
    let (recovered, recovered_ops) =
        persist::recover(&topology.topology, &snap_path, &log_path).expect("recover churn run");
    let mut live_scan = live.check_all_loops();
    live_scan.extend(live.check_all_blackholes());
    let mut recovered_scan = recovered.check_all_loops();
    recovered_scan.extend(recovered.check_all_blackholes());
    let round_trip_equal = recovered_ops as usize == ops.len()
        && recovered.rule_count() == live.rule_count()
        && recovered.atom_count() == live.atom_count()
        && recovered.live_bytes() == live.live_bytes()
        && recovered_scan == live_scan;

    // Damaged artifacts fail cleanly (a one-byte truncation always lands
    // mid-record; a flipped byte always fails the snapshot checksum).
    let log_bytes = std::fs::read(&log_path).expect("read log back");
    let truncated_path = dir.join("truncated.dnlog");
    std::fs::write(&truncated_path, &log_bytes[..log_bytes.len() - 1])
        .expect("write truncated log");
    let truncated_log_error = matches!(
        persist::read_log(&truncated_path),
        Err(PersistError::Corrupt(_))
    );
    let mut corrupt = std::fs::read(&snap_path).expect("read snapshot back");
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x20;
    let corrupted_snapshot_error = matches!(
        Snapshot::from_bytes(&corrupt),
        Err(PersistError::Corrupt(_))
    );

    // Checkpointed run + simulated crash: replay through a
    // CheckpointManager, tear the newest segment's tail mid-record, and
    // time a RepairTail recovery — its cost is bounded by the checkpoint
    // cadence, not the trace length.
    let ckpt_dir = dir.join("ckpt");
    let mut every_ops = (ops.len() as u64 / 8).max(64);
    if ops.len() as u64 % every_ops == 0 {
        // Keep the cadence off the trace length: a rotation exactly at the
        // final op would leave an empty last segment and nothing to salvage.
        every_ops += 1;
    }
    let ckpt_config = CheckpointConfig {
        every_ops,
        retain: 2,
        durability: Durability::FlushPerBatch,
    };
    let net = PersistNet::Single(Box::new(DeltaNet::new(
        topology.topology.clone(),
        engine_config,
    )));
    let mut mgr = CheckpointManager::create(Box::new(FsBackend), &ckpt_dir, net, 0, ckpt_config)
        .expect("create checkpoint dir");
    for chunk in ops.chunks(WINDOW) {
        mgr.apply_batch(chunk).expect("churn trace replays cleanly");
    }
    let checkpoints_written = mgr.checkpoints_written();
    let ckpt_live = mgr.close().expect("close checkpoint manager");
    let live_digest = persist::state_digest(&ckpt_live);
    // Tear: a record length header whose payload never arrived.
    let newest_segment = std::fs::read_dir(&ckpt_dir)
        .expect("list checkpoint dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "dnlog"))
        .max()
        .expect("checkpoint dir has a log segment");
    let mut seg = std::fs::read(&newest_segment).expect("read newest segment");
    seg.extend_from_slice(&[0x09, 0xab]);
    std::fs::write(&newest_segment, &seg).expect("tear newest segment");
    let recover_start = Instant::now();
    let (mgr, report) = CheckpointManager::recover(
        Box::new(FsBackend),
        &ckpt_dir,
        &topology.topology,
        RecoveryPolicy::RepairTail,
        ckpt_config,
    )
    .expect("recover checkpoint dir");
    let recovery_ms = recover_start.elapsed().as_secs_f64() * 1e3;
    let recovered_ckpt = mgr.close().expect("close recovered manager");
    let recovery_bit_identical = report.ops_incorporated == ops.len() as u64
        && persist::state_digest(&recovered_ckpt) == live_digest;
    std::fs::remove_dir_all(&dir).ok();

    let per_op = |total_s: f64| total_s * 1e6 / ops.len().max(1) as f64;
    Json::obj([
        ("schema", Json::str("deltanet-persist-v1")),
        (
            "meta",
            meta_json(
                scale,
                vec![
                    ("dataset", Json::str("Churn")),
                    ("stable_prefixes", Json::int(config.stable_prefixes)),
                    ("flapping_prefixes", Json::int(config.flapping_prefixes)),
                    ("cycles", Json::int(config.cycles)),
                    ("seed", Json::int(config.seed as usize)),
                    ("commit_window", Json::int(WINDOW)),
                ],
            ),
        ),
        ("dataset", Json::str("Churn")),
        ("operations", Json::int(ops.len())),
        ("commit_window", Json::int(WINDOW)),
        ("unlogged_us_per_op", Json::ms(per_op(unlogged_s))),
        ("logged_us_per_op", Json::ms(per_op(logged_s))),
        ("overhead_ratio", Json::ms(logged_s / unlogged_s.max(1e-9))),
        ("durability_sweep", Json::obj(sweep)),
        ("fsync_us_per_op", Json::ms(per_op(fsync_s))),
        (
            "fsync_overhead_ratio",
            Json::ms(fsync_s / unlogged_s.max(1e-9)),
        ),
        ("log_bytes", Json::int(log_bytes.len())),
        ("snapshot_bytes", Json::int(snapshot_bytes)),
        ("snapshot_at_op", Json::int(snapshot_at)),
        ("recovered_ops", Json::int(recovered_ops as usize)),
        ("round_trip_equal", Json::Bool(round_trip_equal)),
        ("truncated_log_error", Json::Bool(truncated_log_error)),
        (
            "corrupted_snapshot_error",
            Json::Bool(corrupted_snapshot_error),
        ),
        ("checkpoint_every", Json::int(every_ops as usize)),
        (
            "checkpoints_written",
            Json::int(checkpoints_written as usize),
        ),
        (
            "repaired_tail_ops",
            Json::int(report.salvaged_tail_ops as usize),
        ),
        ("torn_tail_detected", Json::Bool(report.torn.is_some())),
        ("recovery_ms", Json::ms(recovery_ms)),
        ("recovery_bit_identical", Json::Bool(recovery_bit_identical)),
    ])
}

/// The full machine-readable report behind `all_experiments --json`: the
/// `updates` end-to-end replay, the isolated `insert_hot_path`, and the
/// old-vs-new owner `microbench`. `BENCH_*.json` baselines committed to the
/// repository are produced by this function (see README § Performance).
pub fn json_report(scale: ScaleProfile) -> Json {
    Json::obj([
        ("schema", Json::str("deltanet-bench-v1")),
        (
            "meta",
            meta_json(scale, vec![("report", Json::str("all_experiments"))]),
        ),
        ("scale", Json::str(format!("{scale:?}").to_lowercase())),
        ("updates", updates_json(scale)),
        ("insert_hot_path", insert_hot_path_json(scale)),
        ("microbench", microbench_json(scale)),
        ("churn", churn_json(scale)),
        ("shard_scaling", shard_scaling_json(scale, &[1, 2, 4], 256)),
        ("monitor", monitor_churn_json(scale)),
        ("multifield_monitor", multifield_monitor_json(scale)),
        ("persist", persist_churn_json(scale)),
    ])
}

/// Runs every experiment and concatenates the reports (the `all_experiments`
/// binary, used to regenerate the full evaluation report).
pub fn all_experiments(scale: ScaleProfile) -> String {
    let mut out = String::new();
    out.push_str(&table2(scale));
    out.push('\n');
    let (t3, rows) = table3(scale);
    out.push_str(&t3);
    out.push('\n');
    out.push_str(&fig8(&rows));
    out.push('\n');
    out.push_str(&table4(scale));
    out.push('\n');
    out.push_str(&table5(scale));
    out.push('\n');
    out.push_str(&appendix_c(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_datasets() {
        let t = table2(ScaleProfile::Tiny);
        for name in ["Berkeley", "INET", "RF 1755", "Airtel 1", "4Switch"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }

    #[test]
    fn table3_and_fig8_on_tiny_scale() {
        let (t3, rows) = table3(ScaleProfile::Tiny);
        assert_eq!(rows.len(), 8);
        assert!(t3.contains("Total atoms"));
        for r in &rows {
            assert!(r.atoms > 0, "{} has no atoms", r.name);
            assert!(!r.timings.is_empty());
        }
        let f8 = fig8(&rows);
        assert!(f8.contains("CSV"));
        assert!(f8.contains("Berkeley"));
    }

    #[test]
    fn table4_and_table5_on_tiny_scale() {
        let t4 = table4(ScaleProfile::Tiny);
        assert!(t4.contains("Veriflow-RI (ms)"));
        assert!(t4.contains("Delta-net (ms)"));
        let t5 = table5(ScaleProfile::Tiny);
        assert!(t5.contains("Delta-net (MB)"));
    }

    #[test]
    fn appendix_c_reports_classes() {
        let c = appendix_c(ScaleProfile::Tiny);
        assert!(c.contains("Max classes affected"));
    }

    #[test]
    fn churn_json_reports_memory_trajectory() {
        let report = churn_json(ScaleProfile::Tiny);
        let text = report.render();
        for key in [
            "no_compaction",
            "auto_compaction",
            "allocated_atoms",
            "reclaimable_bounds",
            "live_bytes",
            "after_final_compact",
            "peak_allocated_atoms",
            "compactions",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
        // The reclamation claim itself: after the final compaction the atom
        // table is back at the live atom count.
        let Json::Obj(fields) = &report else {
            panic!("churn report is not an object")
        };
        let no_compaction = fields
            .iter()
            .find(|(k, _)| k == "no_compaction")
            .map(|(_, v)| v)
            .unwrap();
        let Json::Obj(run) = no_compaction else {
            panic!("no_compaction is not an object")
        };
        let snapshot =
            |name: &str| -> &Json { run.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap() };
        let field = |obj: &Json, name: &str| -> f64 {
            let Json::Obj(pairs) = obj else {
                panic!("not an object")
            };
            match pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                Some(Json::Num(x)) => *x,
                other => panic!("{name} missing or non-numeric: {other:?}"),
            }
        };
        let baseline = snapshot("baseline");
        let after_churn = snapshot("after_churn");
        let compacted = snapshot("after_final_compact");
        assert!(field(after_churn, "allocated_atoms") > field(baseline, "allocated_atoms"));
        assert_eq!(
            field(compacted, "allocated_atoms"),
            field(compacted, "atoms")
        );
        assert_eq!(field(compacted, "reclaimable_bounds"), 0.0);
        assert_eq!(field(compacted, "atoms"), field(baseline, "atoms"));
    }

    #[test]
    fn monitor_json_proves_incremental_equals_rescan() {
        let report = monitor_churn_json(ScaleProfile::Tiny);
        let text = report.render();
        for key in [
            "deltanet-monitor-v1",
            "incremental_ms",
            "rescan_ms",
            "speedup",
            "violation_transitions",
            "\"mismatches\": 0",
            "\"counts_match\": true",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
    }

    #[test]
    fn persist_json_proves_roundtrip_and_clean_errors() {
        let report = persist_churn_json(ScaleProfile::Tiny);
        let text = report.render();
        for key in [
            "deltanet-persist-v1",
            "unlogged_us_per_op",
            "logged_us_per_op",
            "overhead_ratio",
            "snapshot_bytes",
            "\"round_trip_equal\": true",
            "\"truncated_log_error\": true",
            "\"corrupted_snapshot_error\": true",
            "durability_sweep",
            "\"buffered\"",
            "\"flush\"",
            "\"fsync\"",
            "fsync_overhead_ratio",
            "repaired_tail_ops",
            "\"torn_tail_detected\": true",
            "recovery_ms",
            "\"recovery_bit_identical\": true",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
    }

    #[test]
    fn shard_scaling_json_reports_per_shard_fields() {
        let report = shard_scaling_json(ScaleProfile::Tiny, &[1, 3], 32);
        let text = report.render();
        for key in [
            "deltanet-shards-v1",
            "available_parallelism",
            "ops_per_sec",
            "speedup_vs_first",
            "per_shard",
            "live_bytes",
            "allocated_atoms",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
        // Two datasets x two shard counts, and the 3-shard runs carry three
        // per-shard entries.
        let Json::Obj(fields) = &report else {
            panic!("report is not an object")
        };
        let Some(Json::Arr(results)) = fields.iter().find(|(k, _)| k == "results").map(|(_, v)| v)
        else {
            panic!("no results array")
        };
        assert_eq!(results.len(), 4);
        let Json::Obj(last) = &results[3] else {
            panic!("result is not an object")
        };
        let Some(Json::Arr(per_shard)) =
            last.iter().find(|(k, _)| k == "per_shard").map(|(_, v)| v)
        else {
            panic!("no per_shard array")
        };
        assert_eq!(per_shard.len(), 3);
    }

    #[test]
    fn data_plane_rules_synthetic_vs_airtel() {
        let synthetic = build(DatasetId::Berkeley, ScaleProfile::Tiny);
        let rules = data_plane_rules(&synthetic);
        assert_eq!(rules.len(), synthetic.trace.insert_count());
        let airtel = build(DatasetId::Airtel1, ScaleProfile::Tiny);
        let rules = data_plane_rules(&airtel);
        assert!(!rules.is_empty());
        assert!(rules.len() < airtel.trace.insert_count());
    }
}
