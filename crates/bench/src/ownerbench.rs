//! Old-vs-new owner representation microbenchmark.
//!
//! Replays the *owner-touching part* of Algorithm 1/2 — `clone_atom` on
//! every atom split, one store insert per `(atom, source)` cell of the
//! rule's interval, and the mirror-image removals — through both the arena
//! small-vec [`Owner`] and the legacy hash-of-BTreeMaps
//! [`HashOwner`](legacy::HashOwner). The op trace is derived from a real
//! [`AtomMap`] over generated BGP-like prefixes, so the split/insert mix is
//! the same one the engine sees on the rule-insert hot path, isolated from
//! label and loop-check costs.

use deltanet::atoms::{AtomId, AtomMap};
use deltanet::owner::{legacy, Owner, RuleStore};
use netmodel::rule::{Priority, RuleId};
use netmodel::topology::{LinkId, NodeId};
use std::time::Instant;
use workloads::bgp::{generate_prefixes, PrefixGenConfig};

/// One owner-structure operation of the replayed hot path.
#[derive(Clone, Copy, Debug)]
enum OwnerOp {
    /// An atom split: `owner[new] ← owner[old]`.
    Clone { old: AtomId, new: AtomId },
    /// A store update in the cell `owner[atom][source]`.
    Touch {
        atom: AtomId,
        source: NodeId,
        priority: Priority,
        id: RuleId,
        link: LinkId,
    },
}

/// The insert-phase and remove-phase op traces plus workload statistics.
struct OwnerTrace {
    inserts: Vec<OwnerOp>,
    removes: Vec<OwnerOp>,
    atoms: usize,
    atom_clones: usize,
}

/// The uniform interface the microbenchmark drives; implemented for both
/// owner representations so the identical trace runs through each.
trait OwnerSubject: Default {
    fn apply_clone(&mut self, old: AtomId, new: AtomId);
    fn apply_insert(&mut self, op: &OwnerOp);
    fn apply_remove(&mut self, op: &OwnerOp) -> bool;
    fn entries(&self) -> usize;
}

impl OwnerSubject for Owner {
    fn apply_clone(&mut self, old: AtomId, new: AtomId) {
        self.clone_atom(old, new);
    }

    fn apply_insert(&mut self, op: &OwnerOp) {
        if let OwnerOp::Touch {
            atom,
            source,
            priority,
            id,
            link,
        } = *op
        {
            self.get_mut(atom, source).insert(priority, id, link);
        }
    }

    fn apply_remove(&mut self, op: &OwnerOp) -> bool {
        match *op {
            OwnerOp::Touch {
                atom,
                source,
                priority,
                id,
                ..
            } => self.get_mut(atom, source).remove(priority, id),
            OwnerOp::Clone { .. } => true,
        }
    }

    fn entries(&self) -> usize {
        self.total_entries()
    }
}

impl OwnerSubject for legacy::HashOwner {
    fn apply_clone(&mut self, old: AtomId, new: AtomId) {
        self.clone_atom(old, new);
    }

    fn apply_insert(&mut self, op: &OwnerOp) {
        if let OwnerOp::Touch {
            atom,
            source,
            priority,
            id,
            link,
        } = *op
        {
            RuleStore::insert(self.get_mut(atom, source), priority, id, link);
        }
    }

    fn apply_remove(&mut self, op: &OwnerOp) -> bool {
        match *op {
            OwnerOp::Touch {
                atom,
                source,
                priority,
                id,
                ..
            } => RuleStore::remove(self.get_mut(atom, source), priority, id),
            OwnerOp::Clone { .. } => true,
        }
    }

    fn entries(&self) -> usize {
        self.total_entries()
    }
}

/// Derives the owner-op trace for `rule_count` generated prefixes spread
/// over `sources` switches.
fn build_trace(rule_count: usize, sources: u32, seed: u64) -> OwnerTrace {
    let prefixes = generate_prefixes(PrefixGenConfig {
        count: rule_count,
        overlap_percent: 40,
        seed,
    });
    let mut map = AtomMap::new(32);
    let mut inserts = Vec::new();
    let mut atom_clones = 0usize;
    let mut pairs = Vec::with_capacity(2);
    let rule_meta = |i: usize| {
        (
            NodeId(i as u32 % sources),
            1 + (i as Priority % 997),
            RuleId(i as u64),
            LinkId(i as u32 % 64),
        )
    };
    for (i, prefix) in prefixes.iter().enumerate() {
        let (source, priority, id, link) = rule_meta(i);
        map.create_atoms_into(prefix.interval(), &mut pairs);
        for pair in &pairs {
            atom_clones += 1;
            inserts.push(OwnerOp::Clone {
                old: pair.old,
                new: pair.new,
            });
        }
        for atom in map.iter_atoms_of(prefix.interval()) {
            inserts.push(OwnerOp::Touch {
                atom,
                source,
                priority,
                id,
                link,
            });
        }
    }
    // Removal phase over the *final* atom map: after all inserts, every atom
    // of a rule's interval carries the rule (splits copied it), so these are
    // exactly the cells Algorithm 2 touches.
    let mut removes = Vec::new();
    for (i, prefix) in prefixes.iter().enumerate().rev() {
        let (source, priority, id, link) = rule_meta(i);
        for atom in map.iter_atoms_of(prefix.interval()) {
            removes.push(OwnerOp::Touch {
                atom,
                source,
                priority,
                id,
                link,
            });
        }
    }
    OwnerTrace {
        inserts,
        removes,
        atoms: map.atom_count(),
        atom_clones,
    }
}

/// An opaque, reusable owner-op trace for external harnesses (the Criterion
/// microbenchmark replays the same trace through both representations).
pub struct OwnerTraceHandle(OwnerTrace);

/// Builds a reusable owner-op trace (see [`owner_microbench`] for the
/// parameters).
pub fn build_owner_trace(rule_count: usize, sources: u32, seed: u64) -> OwnerTraceHandle {
    OwnerTraceHandle(build_trace(rule_count, sources, seed))
}

/// Replays a trace through the arena + small-vec [`Owner`] once.
pub fn replay_arena(trace: &OwnerTraceHandle) -> SubjectTiming {
    run_subject::<Owner>(&trace.0)
}

/// Replays a trace through the legacy hash-of-BTreeMaps owner once.
pub fn replay_legacy(trace: &OwnerTraceHandle) -> SubjectTiming {
    run_subject::<legacy::HashOwner>(&trace.0)
}

/// Timing of one representation over the trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubjectTiming {
    /// Insert-phase wall-clock (ms): atom clones + store inserts.
    pub insert_ms: f64,
    /// Remove-phase wall-clock (ms).
    pub remove_ms: f64,
}

/// The result of one old-vs-new comparison run.
#[derive(Clone, Copy, Debug)]
pub struct OwnerBenchResult {
    /// Rules in the generated workload.
    pub rules: usize,
    /// Atoms in the final atom map.
    pub atoms: usize,
    /// `clone_atom` calls (atom splits) in the insert phase.
    pub atom_clones: usize,
    /// Store inserts in the insert phase.
    pub insert_ops: usize,
    /// Store removals in the remove phase.
    pub remove_ops: usize,
    /// The arena + inline small-vec representation (production).
    pub arena_smallvec: SubjectTiming,
    /// The legacy `HashMap` + `BTreeMap` representation.
    pub hashmap_btree: SubjectTiming,
}

impl OwnerBenchResult {
    /// Legacy-over-arena ratio for the insert phase (>1 means the arena is
    /// faster).
    pub fn insert_speedup(&self) -> f64 {
        self.hashmap_btree.insert_ms / self.arena_smallvec.insert_ms.max(1e-9)
    }

    /// Legacy-over-arena ratio for the remove phase.
    pub fn remove_speedup(&self) -> f64 {
        self.hashmap_btree.remove_ms / self.arena_smallvec.remove_ms.max(1e-9)
    }
}

fn run_subject<S: OwnerSubject>(trace: &OwnerTrace) -> SubjectTiming {
    let mut subject = S::default();
    let start = Instant::now();
    for op in &trace.inserts {
        match op {
            OwnerOp::Clone { old, new } => subject.apply_clone(*old, *new),
            touch => subject.apply_insert(touch),
        }
    }
    let insert_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(subject.entries() > 0, "trace inserted nothing");
    let start = Instant::now();
    for op in &trace.removes {
        assert!(subject.apply_remove(op), "owner trace out of sync");
    }
    let remove_ms = start.elapsed().as_secs_f64() * 1e3;
    SubjectTiming {
        insert_ms,
        remove_ms,
    }
}

/// Runs the rule-insert/remove hot path through both owner representations
/// and reports the timings. `runs` repetitions are taken and the fastest
/// kept per representation (minimum is the standard noise filter for
/// single-shot traces). Representations alternate, so neither consistently
/// benefits from a warm allocator.
pub fn owner_microbench(
    rule_count: usize,
    sources: u32,
    seed: u64,
    runs: usize,
) -> OwnerBenchResult {
    let trace = build_trace(rule_count, sources, seed);
    let mut arena = SubjectTiming {
        insert_ms: f64::INFINITY,
        remove_ms: f64::INFINITY,
    };
    let mut hash = arena;
    for _ in 0..runs.max(1) {
        let a = run_subject::<Owner>(&trace);
        arena.insert_ms = arena.insert_ms.min(a.insert_ms);
        arena.remove_ms = arena.remove_ms.min(a.remove_ms);
        let h = run_subject::<legacy::HashOwner>(&trace);
        hash.insert_ms = hash.insert_ms.min(h.insert_ms);
        hash.remove_ms = hash.remove_ms.min(h.remove_ms);
    }
    let insert_ops = trace.inserts.len() - trace.atom_clones;
    OwnerBenchResult {
        rules: rule_count,
        atoms: trace.atoms,
        atom_clones: trace.atom_clones,
        insert_ops,
        remove_ops: trace.removes.len(),
        arena_smallvec: arena,
        hashmap_btree: hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_representations_replay_the_same_trace() {
        let trace = build_trace(300, 6, 7);
        assert!(trace.atoms > 1);
        assert!(trace.atom_clones > 0);
        // Splits clone cells into fresh atoms, so the final entry count (and
        // with it the removal trace) is at least the number of raw inserts.
        assert!(trace.removes.len() >= trace.inserts.len() - trace.atom_clones);
        // Both subjects drain to empty, proving the traces line up.
        let mut arena = Owner::default();
        let mut hash = legacy::HashOwner::default();
        for op in &trace.inserts {
            match op {
                OwnerOp::Clone { old, new } => {
                    arena.apply_clone(*old, *new);
                    hash.apply_clone(*old, *new);
                }
                touch => {
                    arena.apply_insert(touch);
                    hash.apply_insert(touch);
                }
            }
        }
        assert_eq!(arena.entries(), hash.entries());
        assert_eq!(arena.entries(), trace.removes.len());
        for op in &trace.removes {
            assert!(arena.apply_remove(op));
            assert!(hash.apply_remove(op));
        }
        assert_eq!(arena.entries(), 0);
        assert_eq!(hash.entries(), 0);
    }

    #[test]
    fn microbench_smoke() {
        let r = owner_microbench(200, 4, 1, 1);
        assert_eq!(r.rules, 200);
        assert!(r.insert_ops > 0 && r.remove_ops > 0);
        assert!(r.arena_smallvec.insert_ms >= 0.0);
        assert!(r.hashmap_btree.insert_ms >= 0.0);
        assert!(r.insert_speedup() > 0.0);
        assert!(r.remove_speedup() > 0.0);
    }
}
