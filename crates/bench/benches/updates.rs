//! Criterion micro-benchmark for Theorem 1: per-update cost of Delta-net vs
//! Veriflow-RI while replaying dataset traces (rule insertions + removals
//! with per-update loop checking).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deltanet::{DeltaNet, DeltaNetConfig};
use netmodel::checker::Checker;
use veriflow_ri::{VeriflowConfig, VeriflowRi};
use workloads::{build, DatasetId, ScaleProfile};

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_updates");
    group.sample_size(10);
    for id in [
        DatasetId::FourSwitch,
        DatasetId::Airtel1,
        DatasetId::Berkeley,
    ] {
        let ds = build(id, ScaleProfile::Tiny);
        let ops = ds.trace.ops().to_vec();
        let ops_per_iter = ops.len() as u64;
        group.throughput(criterion::Throughput::Elements(ops_per_iter));

        group.bench_function(format!("deltanet/{}", id.name()), |b| {
            b.iter_batched(
                || {
                    (
                        DeltaNet::new(ds.topology.topology.clone(), DeltaNetConfig::default()),
                        ops.clone(),
                    )
                },
                |(mut net, ops)| {
                    for op in &ops {
                        let _ = net.apply(op);
                    }
                    net.rule_count()
                },
                BatchSize::LargeInput,
            )
        });

        group.bench_function(format!("veriflow-ri/{}", id.name()), |b| {
            b.iter_batched(
                || {
                    (
                        VeriflowRi::new(ds.topology.topology.clone(), VeriflowConfig::default()),
                        ops.clone(),
                    )
                },
                |(mut vf, ops)| {
                    for op in &ops {
                        let _ = vf.apply(op);
                    }
                    vf.rule_count()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
