//! Ablation benchmarks for the design choices called out in the engine's crate docs:
//!
//! * edge labels as contiguous bitsets (the paper's choice, §4.1) vs a
//!   `BTreeSet<AtomId>` per link;
//! * per-update loop checking on vs off (the cost of the property check
//!   itself, isolating the cost of maintaining atoms/owners/labels).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deltanet::atomset::AtomSet;
use deltanet::{AtomId, DeltaNet, DeltaNetConfig};
use netmodel::checker::Checker;
use std::collections::BTreeSet;
use workloads::{build, DatasetId, ScaleProfile};

fn bench_label_representation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_label_repr");
    let atoms_a: Vec<AtomId> = (0..20_000).step_by(3).map(AtomId).collect();
    let atoms_b: Vec<AtomId> = (0..20_000).step_by(7).map(AtomId).collect();

    group.bench_function("bitset_build_and_intersect", |b| {
        b.iter(|| {
            let a: AtomSet = atoms_a.iter().copied().collect();
            let bb: AtomSet = atoms_b.iter().copied().collect();
            a.intersection(&bb).len()
        })
    });
    group.bench_function("btreeset_build_and_intersect", |b| {
        b.iter(|| {
            let a: BTreeSet<AtomId> = atoms_a.iter().copied().collect();
            let bb: BTreeSet<AtomId> = atoms_b.iter().copied().collect();
            a.intersection(&bb).count()
        })
    });
    group.finish();
}

fn bench_loop_check_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_loop_check");
    group.sample_size(10);
    let ds = build(DatasetId::FourSwitch, ScaleProfile::Tiny);
    let ops = ds.trace.ops().to_vec();
    for (label, check) in [("with_loop_check", true), ("without_loop_check", false)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    DeltaNet::new(
                        ds.topology.topology.clone(),
                        DeltaNetConfig {
                            check_loops_per_update: check,
                            ..Default::default()
                        },
                    )
                },
                |mut net| {
                    for op in &ops {
                        let _ = net.apply(op);
                    }
                    net.rule_count()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_label_representation, bench_loop_check_cost);
criterion_main!(benches);
