//! Criterion benchmark for Algorithm 3 (all-pairs reachability of all
//! atoms): `O(K · |V|³)` scaling over ring topologies of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deltanet::{DeltaNet, DeltaNetConfig, ReachabilityMatrix};
use workloads::topologies::ring;
use workloads::{
    bgp::{generate_prefixes, PrefixGenConfig},
    rulegen::{generate_data_plane, PriorityMode},
};

fn bench_allpairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("allpairs_reachability");
    group.sample_size(10);
    for &nodes in &[4usize, 8, 16, 32] {
        let topo = ring("ring", nodes);
        let prefixes = generate_prefixes(PrefixGenConfig {
            count: 50,
            overlap_percent: 40,
            seed: 1,
        });
        let plane = generate_data_plane(&topo, &prefixes, PriorityMode::Random, 7);
        let mut net = DeltaNet::new(
            topo.topology.clone(),
            DeltaNetConfig {
                check_loops_per_update: false,
                ..Default::default()
            },
        );
        for r in &plane.rules {
            net.insert_rule(*r);
        }
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &net, |b, net| {
            b.iter(|| {
                let m = ReachabilityMatrix::compute(net);
                m.reachable_pair_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allpairs);
criterion_main!(benches);
