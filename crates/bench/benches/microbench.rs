//! Criterion micro-benchmarks for the individual data structures: atom
//! creation/splitting, atom-set (bitset) operations, owner representations
//! (arena small-vec vs legacy hash-of-BTreeMaps), and trie overlap queries.

use bench::ownerbench::{build_owner_trace, replay_arena, replay_legacy};
use criterion::{criterion_group, criterion_main, Criterion};
use deltanet::atoms::AtomMap;
use deltanet::atomset::AtomSet;
use deltanet::AtomId;
use netmodel::interval::Interval;
use netmodel::rule::RuleId;
use veriflow_ri::PrefixTrie;
use workloads::bgp::{generate_prefixes, PrefixGenConfig};

fn bench_atom_creation(c: &mut Criterion) {
    let prefixes = generate_prefixes(PrefixGenConfig {
        count: 5_000,
        overlap_percent: 40,
        seed: 3,
    });
    c.bench_function("atom_map/create_5000_prefixes", |b| {
        b.iter(|| {
            let mut m = AtomMap::new(32);
            for p in &prefixes {
                let _ = m.create_atoms(p.interval());
            }
            m.atom_count()
        })
    });

    let mut m = AtomMap::new(32);
    for p in &prefixes {
        m.create_atoms(p.interval());
    }
    c.bench_function("atom_map/atoms_of_wide_interval", |b| {
        b.iter(|| m.atoms_of_count(Interval::new(0, 1 << 32)))
    });
}

fn bench_atomset_ops(c: &mut Criterion) {
    let a: AtomSet = (0..10_000).step_by(3).map(AtomId).collect();
    let bset: AtomSet = (0..10_000).step_by(5).map(AtomId).collect();
    c.bench_function("atomset/union_10k", |b| b.iter(|| a.union(&bset).len()));
    c.bench_function("atomset/intersection_10k", |b| {
        b.iter(|| a.intersection(&bset).len())
    });
    c.bench_function("atomset/iterate_10k", |b| b.iter(|| a.iter().count()));
}

fn bench_trie(c: &mut Criterion) {
    let prefixes = generate_prefixes(PrefixGenConfig {
        count: 5_000,
        overlap_percent: 40,
        seed: 9,
    });
    let mut trie = PrefixTrie::new(32);
    for (i, p) in prefixes.iter().enumerate() {
        trie.insert(p, RuleId(i as u64));
    }
    let query = prefixes[42];
    c.bench_function("trie/overlapping_query", |b| {
        b.iter(|| trie.overlapping(&query).len())
    });
    c.bench_function("trie/insert_5000", |b| {
        b.iter(|| {
            let mut t = PrefixTrie::new(32);
            for (i, p) in prefixes.iter().enumerate() {
                t.insert(p, RuleId(i as u64));
            }
            t.len()
        })
    });
}

fn bench_owner_representations(c: &mut Criterion) {
    // The owner-touching part of the rule-insert/remove hot path (atom-split
    // clones + per-cell store updates), replayed through both layouts. The
    // committed BENCH_*.json baselines run the same trace at >=10k rules via
    // `all_experiments --json`; this keeps a quick always-compiled variant.
    let trace = build_owner_trace(5_000, 8, 42);
    c.bench_function("owner/arena_smallvec_replay_5k", |b| {
        b.iter(|| replay_arena(&trace))
    });
    c.bench_function("owner/hashmap_btree_replay_5k", |b| {
        b.iter(|| replay_legacy(&trace))
    });
}

criterion_group!(
    benches,
    bench_atom_creation,
    bench_atomset_ops,
    bench_owner_representations,
    bench_trie
);
criterion_main!(benches);
