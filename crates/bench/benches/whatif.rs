//! Criterion benchmark for the "what if this link fails?" query (Table 4's
//! micro-scale counterpart): Delta-net reads its persistent labels, while
//! Veriflow-RI must recompute equivalence classes and forwarding graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use netmodel::checker::Checker;
use netmodel::topology::LinkId;
use workloads::{build, DatasetId, ScaleProfile};

fn bench_whatif(c: &mut Criterion) {
    let mut group = c.benchmark_group("whatif_link_failure");
    group.sample_size(10);
    let ds = build(DatasetId::Berkeley, ScaleProfile::Tiny);
    let rules = bench::experiments::data_plane_rules(&ds);
    let net = bench::experiments::load_deltanet(&ds, &rules);
    let vf = bench::experiments::load_veriflow(&ds, &rules);

    // The most heavily used link is the most interesting query.
    let link: LinkId = ds
        .topology
        .topology
        .links()
        .iter()
        .map(|l| l.id)
        .max_by_key(|&l| net.label(l).len())
        .unwrap();

    group.bench_function("deltanet", |b| {
        b.iter(|| net.what_if_link_failure(link, false).affected_classes)
    });
    group.bench_function("deltanet+loops", |b| {
        b.iter(|| net.what_if_link_failure(link, true).affected_classes)
    });
    group.bench_function("veriflow-ri", |b| {
        b.iter(|| vf.what_if_link_failure(link, false).affected_classes)
    });
    group.finish();
}

criterion_group!(benches, bench_whatif);
criterion_main!(benches);
