//! Packet equivalence classes (ECs) as computed by Veriflow.
//!
//! When a rule is inserted or removed, Veriflow collects every rule in the
//! network whose prefix overlaps the affected prefix and partitions the
//! affected address range into equivalence classes: maximal sub-ranges
//! within which every overlapping rule either applies fully or not at all.
//! Each EC then gets its own forwarding graph (§2.1).
//!
//! This module implements the partitioning: given a target interval and the
//! intervals of the overlapping rules, it produces the EC sub-intervals.

use netmodel::interval::{Bound, Interval};

/// An equivalence class: a maximal address sub-range over which the set of
/// applicable rules does not change.
pub type EquivalenceClass = Interval;

/// Partitions `target` into equivalence classes induced by the overlapping
/// rule intervals.
///
/// Every returned interval is contained in `target`, the intervals are
/// sorted, disjoint, and their union is exactly `target`. Rules whose
/// intervals do not overlap `target` are ignored.
pub fn equivalence_classes(target: Interval, rule_intervals: &[Interval]) -> Vec<EquivalenceClass> {
    if target.is_empty() {
        return Vec::new();
    }
    let mut cuts: Vec<Bound> = Vec::with_capacity(rule_intervals.len() * 2 + 2);
    cuts.push(target.lo());
    cuts.push(target.hi());
    for iv in rule_intervals {
        if !iv.overlaps(&target) {
            continue;
        }
        if iv.lo() > target.lo() && iv.lo() < target.hi() {
            cuts.push(iv.lo());
        }
        if iv.hi() > target.lo() && iv.hi() < target.hi() {
            cuts.push(iv.hi());
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).map(|w| Interval::new(w[0], w[1])).collect()
}

/// A representative address for an EC (any value inside it); the forwarding
/// behaviour of this one address is the behaviour of the whole class.
pub fn representative(ec: &EquivalenceClass) -> Bound {
    debug_assert!(!ec.is_empty());
    ec.lo()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: Bound, hi: Bound) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn no_overlapping_rules_single_class() {
        let ecs = equivalence_classes(iv(0, 100), &[]);
        assert_eq!(ecs, vec![iv(0, 100)]);
    }

    #[test]
    fn paper_figure1_three_classes() {
        // Figure 1: the new rule r4 overlaps r1, r2, r3; the gray dashed
        // lines cut its range into (at least) three segments. Model r4 as
        // [0:16) and the others as [0:12), [4:12), [8:16).
        let ecs = equivalence_classes(iv(0, 16), &[iv(0, 12), iv(4, 12), iv(8, 16)]);
        assert_eq!(ecs, vec![iv(0, 4), iv(4, 8), iv(8, 12), iv(12, 16)]);
    }

    #[test]
    fn rules_outside_target_are_ignored() {
        let ecs = equivalence_classes(iv(10, 20), &[iv(0, 5), iv(30, 40)]);
        assert_eq!(ecs, vec![iv(10, 20)]);
    }

    #[test]
    fn rule_straddling_target_boundary_cuts_inside_only() {
        let ecs = equivalence_classes(iv(10, 20), &[iv(5, 15), iv(18, 30)]);
        assert_eq!(ecs, vec![iv(10, 15), iv(15, 18), iv(18, 20)]);
    }

    #[test]
    fn classes_partition_the_target() {
        let rules = [iv(3, 9), iv(0, 50), iv(9, 12), iv(40, 60), iv(7, 41)];
        let target = iv(5, 45);
        let ecs = equivalence_classes(target, &rules);
        assert_eq!(ecs.first().unwrap().lo(), target.lo());
        assert_eq!(ecs.last().unwrap().hi(), target.hi());
        for w in ecs.windows(2) {
            assert_eq!(w[0].hi(), w[1].lo());
        }
        // Within each EC, every rule either covers it fully or not at all.
        for ec in &ecs {
            for r in &rules {
                assert!(
                    r.contains_interval(ec) || !r.overlaps(ec),
                    "rule {r} straddles EC {ec}"
                );
            }
        }
    }

    #[test]
    fn duplicate_bounds_deduplicated() {
        let ecs = equivalence_classes(iv(0, 10), &[iv(0, 5), iv(0, 5), iv(5, 10)]);
        assert_eq!(ecs, vec![iv(0, 5), iv(5, 10)]);
    }

    #[test]
    fn empty_target_yields_no_classes() {
        assert!(equivalence_classes(iv(5, 5), &[iv(0, 10)]).is_empty());
    }

    #[test]
    fn representative_lies_inside() {
        let ecs = equivalence_classes(iv(0, 16), &[iv(4, 8)]);
        for ec in ecs {
            assert!(ec.contains(representative(&ec)));
        }
    }
}
