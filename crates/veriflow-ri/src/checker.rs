//! The Veriflow-RI checker: the baseline Delta-net is compared against.
//!
//! Veriflow-RI re-implements Veriflow's core idea for a single packet-header
//! field (§4.3.1): rules live in a one-dimensional binary trie; on every
//! insertion or removal the checker collects the overlapping rules, computes
//! the affected equivalence classes, builds one forwarding graph per class,
//! and traverses each graph to find forwarding loops. Nothing is maintained
//! across updates beyond the trie and the rule set — which is exactly why
//! link-failure "what if" queries are so much more expensive than for
//! Delta-net (§4.3.2).

use crate::ec::equivalence_classes;
use crate::forwarding_graph::ForwardingGraph;
use crate::trie::PrefixTrie;
use netmodel::checker::{Checker, InvariantViolation, UpdateError, UpdateReport, WhatIfReport};
use netmodel::interval::{normalize, Interval};
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, Topology};
use netmodel::trace::Op;
use std::collections::{BTreeSet, HashMap};

/// Configuration of a [`VeriflowRi`] instance.
#[derive(Clone, Copy, Debug)]
pub struct VeriflowConfig {
    /// Width in bits of the matched header field (32 for IPv4).
    pub field_width: u8,
    /// Whether to run forwarding-loop detection on every affected
    /// equivalence class of every update.
    pub check_loops_per_update: bool,
}

impl Default for VeriflowConfig {
    fn default() -> Self {
        VeriflowConfig {
            field_width: 32,
            check_loops_per_update: true,
        }
    }
}

/// The Veriflow-RI data-plane checker.
#[derive(Clone, Debug)]
pub struct VeriflowRi {
    topology: Topology,
    config: VeriflowConfig,
    trie: PrefixTrie,
    rules: HashMap<RuleId, Rule>,
    rules_by_link: HashMap<LinkId, Vec<RuleId>>,
    /// Largest number of equivalence classes affected by a single update —
    /// the statistic reported in Appendix C.
    max_affected_ecs: usize,
}

impl VeriflowRi {
    /// Creates a checker over the given topology.
    pub fn new(topology: Topology, config: VeriflowConfig) -> Self {
        VeriflowRi {
            topology,
            trie: PrefixTrie::new(config.field_width),
            config,
            rules: HashMap::new(),
            rules_by_link: HashMap::new(),
            max_affected_ecs: 0,
        }
    }

    /// Creates a checker with the default configuration.
    pub fn with_topology(topology: Topology) -> Self {
        VeriflowRi::new(topology, VeriflowConfig::default())
    }

    /// The topology this checker verifies.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The rule with the given id, if installed.
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(&id)
    }

    /// The largest number of equivalence classes a single update has
    /// affected so far (Appendix C).
    pub fn max_affected_ecs(&self) -> usize {
        self.max_affected_ecs
    }

    /// Collects the full [`Rule`]s overlapping `prefix_interval`, via the trie.
    fn overlapping_rules(&self, rule: &Rule) -> Vec<Rule> {
        self.trie
            .overlapping(&rule.prefix)
            .into_iter()
            .filter_map(|id| self.rules.get(&id).copied())
            .collect()
    }

    /// The Veriflow update procedure shared by insert and remove: compute
    /// the affected equivalence classes of `target` from `candidates`,
    /// build one forwarding graph per class, and (optionally) check loops.
    fn process_update(
        &mut self,
        target: Interval,
        candidates: &[Rule],
        changed_link: LinkId,
    ) -> (usize, Vec<InvariantViolation>) {
        let rule_intervals: Vec<Interval> = candidates.iter().map(Rule::interval).collect();
        let ecs = equivalence_classes(target, &rule_intervals);
        let affected = ecs.len();
        self.max_affected_ecs = self.max_affected_ecs.max(affected);
        let mut violations = Vec::new();
        if self.config.check_loops_per_update {
            for ec in &ecs {
                let graph = ForwardingGraph::build(*ec, candidates);
                violations.extend(graph.find_loops(&self.topology));
            }
        }
        let _ = changed_link;
        (affected, violations)
    }

    /// Inserts a rule, recomputing the affected equivalence classes and their
    /// forwarding graphs.
    ///
    /// # Panics
    ///
    /// Panics if a rule with the same id is already installed. Use
    /// [`VeriflowRi::try_insert_rule`] to get an error instead.
    pub fn insert_rule(&mut self, rule: Rule) -> UpdateReport {
        self.try_insert_rule(rule).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`VeriflowRi::insert_rule`]: a duplicate rule id or
    /// an out-of-topology link is reported as an [`UpdateError`] without
    /// touching the checker state.
    pub fn try_insert_rule(&mut self, rule: Rule) -> Result<UpdateReport, UpdateError> {
        if self.rules.contains_key(&rule.id) {
            return Err(UpdateError::DuplicateRule(rule.id));
        }
        if rule.link.index() >= self.topology.link_count() {
            return Err(UpdateError::UnknownLink {
                rule: rule.id,
                link: rule.link,
            });
        }
        self.trie.insert(&rule.prefix, rule.id);
        self.rules.insert(rule.id, rule);
        self.rules_by_link
            .entry(rule.link)
            .or_default()
            .push(rule.id);

        let candidates = self.overlapping_rules(&rule);
        let (affected, violations) = self.process_update(rule.interval(), &candidates, rule.link);
        Ok(UpdateReport {
            rule_id: Some(rule.id),
            was_insert: true,
            affected_classes: affected,
            changed_links: vec![rule.link],
            violations,
        })
    }

    /// Removes a rule, recomputing the affected equivalence classes.
    ///
    /// # Panics
    ///
    /// Panics if no rule with that id is installed. Use
    /// [`VeriflowRi::try_remove_rule`] to get an error instead.
    pub fn remove_rule(&mut self, id: RuleId) -> UpdateReport {
        self.try_remove_rule(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`VeriflowRi::remove_rule`]: an unknown rule id is
    /// reported as an [`UpdateError`] without touching the checker state.
    pub fn try_remove_rule(&mut self, id: RuleId) -> Result<UpdateReport, UpdateError> {
        let rule = match self.rules.remove(&id) {
            Some(rule) => rule,
            None => return Err(UpdateError::UnknownRule(id)),
        };
        let removed = self.trie.remove(&rule.prefix, id);
        debug_assert!(removed, "trie out of sync for {id:?}");
        if let Some(ids) = self.rules_by_link.get_mut(&rule.link) {
            ids.retain(|&r| r != id);
        }

        let candidates = self.overlapping_rules(&rule);
        let (affected, violations) = self.process_update(rule.interval(), &candidates, rule.link);
        Ok(UpdateReport {
            rule_id: Some(id),
            was_insert: false,
            affected_classes: affected,
            changed_links: vec![rule.link],
            violations,
        })
    }

    /// The "what if" link-failure query: Veriflow has to construct the
    /// forwarding graphs of every equivalence class affected by the failed
    /// link, which means one EC computation per rule on the link and one
    /// graph per resulting class (§4.3.2).
    pub fn link_failure_impact(&self, link: LinkId, check_loops: bool) -> WhatIfReport {
        let rule_ids = self.rules_by_link.get(&link).cloned().unwrap_or_default();
        let mut affected_classes = 0usize;
        let mut affected_packets: Vec<Interval> = Vec::new();
        let mut affected_links: BTreeSet<LinkId> = BTreeSet::new();
        let mut violations: Vec<InvariantViolation> = Vec::new();

        for id in rule_ids {
            let Some(rule) = self.rules.get(&id).copied() else {
                continue;
            };
            affected_packets.push(rule.interval());
            let candidates = self.overlapping_rules(&rule);
            let intervals: Vec<Interval> = candidates.iter().map(Rule::interval).collect();
            let ecs = equivalence_classes(rule.interval(), &intervals);
            for ec in ecs {
                let graph = ForwardingGraph::build(ec, &candidates);
                // Only classes actually forwarded along the failed link are
                // affected by its failure.
                if !graph.uses_link(link) {
                    continue;
                }
                affected_classes += 1;
                for l in graph.links() {
                    if l != link {
                        affected_links.insert(l);
                    }
                }
                if check_loops {
                    violations.extend(graph.find_loops(&self.topology));
                }
            }
        }
        violations.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        violations.dedup();
        WhatIfReport {
            link: Some(link),
            affected_classes,
            affected_packets: normalize(affected_packets),
            affected_links: affected_links.into_iter().collect(),
            violations,
        }
    }

    /// Estimated heap memory used by the checker's internal state.
    pub fn memory_estimate(&self) -> usize {
        self.trie.memory_bytes()
            + self.rules.capacity()
                * (std::mem::size_of::<RuleId>() + std::mem::size_of::<Rule>() + 8)
            + self
                .rules_by_link
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<RuleId>() + 32)
                .sum::<usize>()
    }
}

impl Checker for VeriflowRi {
    fn name(&self) -> &'static str {
        "veriflow-ri"
    }

    fn apply(&mut self, op: &Op) -> UpdateReport {
        match op {
            Op::Insert(rule) => self.insert_rule(*rule),
            Op::Remove(id) => self.remove_rule(*id),
        }
    }

    fn try_apply(&mut self, op: &Op) -> Result<UpdateReport, UpdateError> {
        match op {
            Op::Insert(rule) => self.try_insert_rule(*rule),
            Op::Remove(id) => self.try_remove_rule(*id),
        }
    }

    fn what_if_link_failure(&self, link: LinkId, check_loops: bool) -> WhatIfReport {
        self.link_failure_impact(link, check_loops)
    }

    fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn class_count(&self) -> usize {
        self.max_affected_ecs
    }

    fn memory_bytes(&self) -> usize {
        self.memory_estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::ip::IpPrefix;
    use netmodel::topology::NodeId;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn square() -> (Topology, Vec<NodeId>) {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 4);
        topo.add_link(n[0], n[1]);
        topo.add_link(n[1], n[2]);
        topo.add_link(n[2], n[3]);
        topo.add_link(n[3], n[0]);
        topo.add_link(n[0], n[3]);
        (topo, n)
    }

    #[test]
    fn insert_reports_equivalence_classes() {
        let (topo, n) = square();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let mut vf = VeriflowRi::with_topology(topo);
        let rep = vf.insert_rule(Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01));
        assert!(rep.was_insert);
        assert_eq!(rep.affected_classes, 1);
        // Overlapping narrower rule on a different switch splits the range.
        let rep = vf.insert_rule(Rule::forward(RuleId(2), p("10.1.0.0/16"), 5, n[1], l12));
        assert_eq!(rep.affected_classes, 1); // classes of the /16 range itself
        let rep = vf.insert_rule(Rule::forward(RuleId(3), p("10.0.0.0/9"), 3, n[1], l12));
        // The /9 overlaps both the /8 (covering it) and the /16 (inside it):
        // its range splits into [lo16), [16's range), [rest of /9).
        assert_eq!(rep.affected_classes, 3);
        assert_eq!(vf.max_affected_ecs(), 3);
        assert_eq!(vf.rule_count(), 3);
    }

    #[test]
    fn loop_detection_matches_deltanet_semantics() {
        let (topo, n) = square();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let l23 = topo.link_between(n[2], n[3]).unwrap();
        let l30 = topo.link_between(n[3], n[0]).unwrap();
        let mut vf = VeriflowRi::with_topology(topo);
        for (i, (node, link)) in [(n[0], l01), (n[1], l12), (n[2], l23)].iter().enumerate() {
            let rep = vf.insert_rule(Rule::forward(
                RuleId(i as u64),
                p("10.0.0.0/8"),
                1,
                *node,
                *link,
            ));
            assert!(!rep.has_loop());
        }
        // Closing the ring creates a loop.
        let rep = vf.insert_rule(Rule::forward(RuleId(9), p("10.0.0.0/8"), 1, n[3], l30));
        assert!(rep.has_loop());
        // Removing one of the ring rules clears it; the removal update
        // itself reports the loop is gone (no violations).
        let rep = vf.remove_rule(RuleId(1));
        assert!(!rep.has_loop());
    }

    #[test]
    fn higher_priority_rule_masks_lower_one() {
        let (topo, n) = square();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l03 = topo.link_between(n[0], n[3]).unwrap();
        let mut vf = VeriflowRi::with_topology(topo);
        vf.insert_rule(Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01));
        vf.insert_rule(Rule::forward(RuleId(2), p("10.0.0.0/8"), 9, n[0], l03));
        // The what-if on l01 finds no affected class: everything is owned by
        // the higher-priority rule towards l03.
        let rep = vf.link_failure_impact(l01, false);
        assert_eq!(rep.affected_classes, 0);
        let rep = vf.link_failure_impact(l03, false);
        assert_eq!(rep.affected_classes, 1);
        assert_eq!(rep.affected_packets, vec![p("10.0.0.0/8").interval()]);
    }

    #[test]
    fn whatif_reports_downstream_links() {
        let (topo, n) = square();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let l23 = topo.link_between(n[2], n[3]).unwrap();
        let mut vf = VeriflowRi::with_topology(topo);
        vf.insert_rule(Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01));
        vf.insert_rule(Rule::forward(RuleId(2), p("10.0.0.0/8"), 1, n[1], l12));
        vf.insert_rule(Rule::forward(RuleId(3), p("10.0.0.0/8"), 1, n[2], l23));
        let rep = vf.link_failure_impact(l01, true);
        assert_eq!(rep.affected_classes, 1);
        assert!(rep.affected_links.contains(&l12));
        assert!(rep.affected_links.contains(&l23));
        assert!(!rep.affected_links.contains(&l01));
        assert!(rep.violations.is_empty());
        // A link with no rules is unaffected.
        let l30 = vf.topology().link_between(n[3], n[0]).unwrap();
        let rep = vf.link_failure_impact(l30, true);
        assert_eq!(rep.affected_classes, 0);
        assert!(rep.affected_links.is_empty());
    }

    #[test]
    fn remove_keeps_trie_and_indexes_consistent() {
        let (topo, n) = square();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let mut vf = VeriflowRi::with_topology(topo);
        vf.insert_rule(Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01));
        vf.insert_rule(Rule::forward(RuleId(2), p("10.0.0.0/16"), 2, n[0], l01));
        assert_eq!(vf.rule_count(), 2);
        vf.remove_rule(RuleId(1));
        assert_eq!(vf.rule_count(), 1);
        assert!(vf.rule(RuleId(1)).is_none());
        assert!(vf.rule(RuleId(2)).is_some());
        let rep = vf.link_failure_impact(l01, false);
        assert_eq!(rep.affected_packets, vec![p("10.0.0.0/16").interval()]);
        vf.remove_rule(RuleId(2));
        assert_eq!(vf.rule_count(), 0);
        assert!(vf.memory_bytes() > 0);
        assert_eq!(vf.name(), "veriflow-ri");
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let (topo, n) = square();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let mut vf = VeriflowRi::with_topology(topo);
        let r = Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01);
        vf.insert_rule(r);
        vf.insert_rule(r);
    }

    #[test]
    #[should_panic(expected = "unknown rule")]
    fn unknown_removal_panics() {
        let (topo, _) = square();
        let mut vf = VeriflowRi::with_topology(topo);
        vf.remove_rule(RuleId(5));
    }

    #[test]
    fn try_paths_report_errors_without_mutation() {
        let (topo, n) = square();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let mut vf = VeriflowRi::with_topology(topo);
        let r = Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01);
        vf.insert_rule(r);
        assert!(vf
            .try_insert_rule(r)
            .unwrap_err()
            .to_string()
            .contains("inserted twice"));
        // An out-of-topology link must error instead of poisoning the trie
        // and panicking later inside forwarding-graph construction.
        let mut bad = r;
        bad.id = RuleId(2);
        bad.link = netmodel::topology::LinkId(9_999);
        assert!(vf
            .try_insert_rule(bad)
            .unwrap_err()
            .to_string()
            .contains("unknown link"));
        assert!(vf
            .try_remove_rule(RuleId(77))
            .unwrap_err()
            .to_string()
            .contains("unknown rule"));
        assert_eq!(vf.rule_count(), 1);
        // The checker still works after the rejected updates.
        assert!(vf.try_remove_rule(RuleId(1)).is_ok());
        assert_eq!(vf.rule_count(), 0);
    }
}
