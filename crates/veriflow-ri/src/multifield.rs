//! Multi-field equivalence classes and the full-plane oracle.
//!
//! Veriflow's equivalence classes generalize to several header fields as a
//! cross product: the cut points of every field partition that field's
//! space, and a packet class is one sub-range per field (§2.1 builds
//! multi-dimensional classes the same way). This module computes the
//! classes from scratch on every call — no state is maintained — which
//! makes it the independent oracle the multi-field differential suites
//! compare Delta-net's incremental engine against.

use netmodel::checker::InvariantViolation;
use netmodel::header::MAX_SECONDARY_FIELDS;
use netmodel::interval::{normalize, Bound, Interval};
use netmodel::rule::Rule;
use netmodel::topology::{LinkId, NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// One secondary packet class, as a representative value per declared
/// secondary field (unused positions stay 0, which every
/// [`netmodel::header::SecondaryMatch`] treats as wildcarded).
pub type SecClassRep = [Bound; MAX_SECONDARY_FIELDS];

/// The equivalence classes of one field: the full `width`-bit space cut at
/// every bound an installed rule constrains that field with.
fn field_classes(width: u8, bounds: impl Iterator<Item = (Bound, Bound)>) -> Vec<Interval> {
    let max = 1u128 << width;
    let mut cuts: BTreeSet<Bound> = BTreeSet::new();
    cuts.insert(0);
    cuts.insert(max);
    for (lo, hi) in bounds {
        if lo > 0 && lo < max {
            cuts.insert(lo);
        }
        if hi > 0 && hi < max {
            cuts.insert(hi);
        }
    }
    let cuts: Vec<Bound> = cuts.into_iter().collect();
    cuts.windows(2).map(|w| Interval::new(w[0], w[1])).collect()
}

/// The cross product of the secondary fields' equivalence classes, as one
/// representative value per field. With no secondary fields this is the
/// single all-wildcard class.
pub fn secondary_class_reps(rules: &[Rule], sec_widths: &[u8]) -> Vec<SecClassRep> {
    let mut reps: Vec<SecClassRep> = vec![[0; MAX_SECONDARY_FIELDS]];
    for (field, &width) in sec_widths.iter().enumerate() {
        let classes = field_classes(
            width,
            rules
                .iter()
                .filter_map(|r| r.sec.get(field))
                .map(|iv| (iv.lo(), iv.hi())),
        );
        let mut next = Vec::with_capacity(reps.len() * classes.len());
        for class in &classes {
            for base in &reps {
                let mut rep = *base;
                rep[field] = class.lo();
                next.push(rep);
            }
        }
        reps = next;
    }
    reps
}

/// The winning out-link per switch for one `(primary class, secondary
/// class)` slice: the highest-`(priority, id)` candidate whose primary
/// interval covers the class and whose secondary intervals contain the
/// representative. The `(priority, id)` tie-break matches Delta-net's
/// owner-cell ordering.
fn next_hops<'a>(
    candidates: &'a [Rule],
    ec: Interval,
    rep: &SecClassRep,
) -> HashMap<NodeId, &'a Rule> {
    let mut best: HashMap<NodeId, &Rule> = HashMap::new();
    for rule in candidates {
        if !rule.interval().contains_interval(&ec) || !rule.sec.matches(rep) {
            continue;
        }
        match best.get(&rule.source) {
            Some(cur) if (cur.priority, cur.id) >= (rule.priority, rule.id) => {}
            _ => {
                best.insert(rule.source, rule);
            }
        }
    }
    best
}

/// Scans the entire multi-field data plane from scratch: every primary
/// equivalence class × every secondary class gets its forwarding function
/// resolved and walked. Returns all forwarding loops (keyed by canonical
/// cycle) followed by all blackholes (keyed by node), each aggregating the
/// primary address ranges across secondary classes — the same rendering
/// Delta-net's full scans produce, so differential tests compare directly.
pub fn scan_multifield(
    topology: &Topology,
    rules: &[Rule],
    primary_width: u8,
    sec_widths: &[u8],
) -> Vec<InvariantViolation> {
    let primary = field_classes(
        primary_width,
        rules.iter().map(|r| (r.interval().lo(), r.interval().hi())),
    );
    let reps = secondary_class_reps(rules, sec_widths);
    let mut loops: BTreeMap<Vec<NodeId>, Vec<Interval>> = BTreeMap::new();
    let mut holes: BTreeMap<NodeId, Vec<Interval>> = BTreeMap::new();
    for ec in primary {
        let candidates: Vec<Rule> = rules
            .iter()
            .filter(|r| r.interval().contains_interval(&ec))
            .copied()
            .collect();
        if candidates.is_empty() {
            continue;
        }
        for rep in &reps {
            let hops = next_hops(&candidates, ec, rep);
            for cycle in find_cycles(topology, &hops) {
                loops.entry(cycle).or_default().push(ec);
            }
            // Blackholes: classes delivered to a switch that has no winner.
            let mut handled: HashSet<NodeId> = HashSet::new();
            let mut arrived: HashSet<NodeId> = HashSet::new();
            for rule in hops.values() {
                handled.insert(rule.source);
                let dst = topology.link(rule.link).dst;
                if !topology.is_drop_node(dst) {
                    arrived.insert(dst);
                }
            }
            for &node in arrived.difference(&handled) {
                holes.entry(node).or_default().push(ec);
            }
        }
    }
    let mut out: Vec<InvariantViolation> = loops
        .into_iter()
        .map(|(nodes, packets)| InvariantViolation::ForwardingLoop {
            nodes,
            packets: normalize(packets),
        })
        .collect();
    out.extend(
        holes
            .into_iter()
            .map(|(node, packets)| InvariantViolation::Blackhole {
                node,
                packets: normalize(packets),
            }),
    );
    out
}

/// All distinct cycles of the (functional) per-class forwarding graph, in
/// canonical rotation (minimum node first).
fn find_cycles(topology: &Topology, hops: &HashMap<NodeId, &Rule>) -> Vec<Vec<NodeId>> {
    let mut cycles: BTreeSet<Vec<NodeId>> = BTreeSet::new();
    let mut state: HashMap<NodeId, u8> = HashMap::new(); // 1 = on path, 2 = done
    for &start in hops.keys() {
        if state.contains_key(&start) {
            continue;
        }
        let mut path: Vec<NodeId> = Vec::new();
        let mut cur = start;
        loop {
            match state.get(&cur).copied() {
                Some(2) => break,
                Some(1) => {
                    let pos = path.iter().position(|&n| n == cur).unwrap_or(0);
                    let mut cycle = path[pos..].to_vec();
                    let min_pos = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| **n)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min_pos);
                    cycles.insert(cycle);
                    break;
                }
                _ => {}
            }
            state.insert(cur, 1);
            path.push(cur);
            let Some(rule) = hops.get(&cur) else {
                break;
            };
            let next = next_node(topology, rule.link);
            let Some(next) = next else {
                break;
            };
            cur = next;
        }
        for n in path {
            state.insert(n, 2);
        }
    }
    cycles.into_iter().collect()
}

/// The downstream switch of `link`, or `None` when it is a drop link.
fn next_node(topology: &Topology, link: LinkId) -> Option<NodeId> {
    let dst = topology.link(link).dst;
    if topology.is_drop_node(dst) {
        None
    } else {
        Some(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::header::SecondaryMatch;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::RuleId;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn ring() -> (Topology, Vec<NodeId>) {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        topo.add_link(n[0], n[1]);
        topo.add_link(n[1], n[2]);
        topo.add_link(n[2], n[0]);
        (topo, n)
    }

    #[test]
    fn secondary_constrained_rule_loops_only_its_classes() {
        let (topo, n) = ring();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let l20 = topo.link_between(n[2], n[0]).unwrap();
        let sec = SecondaryMatch::new(&[Interval::new(10, 20)]);
        let mut closing = Rule::forward(RuleId(3), p("10.0.0.0/8"), 1, n[2], l20);
        closing.sec = sec;
        let rules = vec![
            Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01),
            Rule::forward(RuleId(2), p("10.0.0.0/8"), 1, n[1], l12),
            closing,
        ];
        let violations = scan_multifield(&topo, &rules, 32, &[8]);
        let loops: Vec<_> = violations.iter().filter(|v| v.is_loop()).collect();
        assert_eq!(loops.len(), 1, "loop exists for src in [10, 20)");
        // Without the closing rule's secondary range, no class loops.
        let open = vec![rules[0], rules[1]];
        assert!(scan_multifield(&topo, &open, 32, &[8])
            .iter()
            .all(|v| !v.is_loop()));
    }

    #[test]
    fn blackhole_appears_per_secondary_class() {
        let (topo, n) = ring();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        // n[0] forwards src [0, 16) of 10/8 to n[1]; n[1] has no rule.
        let mut r = Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01);
        r.sec = SecondaryMatch::new(&[Interval::new(0, 16)]);
        let violations = scan_multifield(&topo, &[r], 32, &[8]);
        let holes: Vec<_> = violations.iter().filter(|v| !v.is_loop()).collect();
        assert_eq!(holes.len(), 1);
        match holes[0] {
            InvariantViolation::Blackhole { node, packets } => {
                assert_eq!(*node, n[1]);
                assert_eq!(packets, &vec![p("10.0.0.0/8").interval()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
