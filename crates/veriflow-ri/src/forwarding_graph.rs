//! Per-equivalence-class forwarding graphs.
//!
//! For every equivalence class, Veriflow constructs a forwarding graph: at
//! each switch, the highest-priority rule matching the class determines the
//! single outgoing edge. Properties such as loop freedom are then checked by
//! traversing that graph (§2.1). Delta-net's whole point is to avoid
//! rebuilding these graphs; Veriflow-RI builds them faithfully so the
//! comparison in the evaluation is meaningful.

use netmodel::checker::InvariantViolation;
use netmodel::interval::Interval;
use netmodel::rule::Rule;
use netmodel::topology::{LinkId, NodeId, Topology};
use std::collections::HashMap;

/// The forwarding graph of one equivalence class.
#[derive(Clone, Debug)]
pub struct ForwardingGraph {
    /// The equivalence class this graph describes.
    pub ec: Interval,
    /// For every switch that has a matching rule: the chosen out-link.
    pub next_hop: HashMap<NodeId, LinkId>,
}

impl ForwardingGraph {
    /// Builds the forwarding graph of `ec` from the candidate rules
    /// (typically the rules overlapping the updated prefix): per switch, the
    /// highest-priority rule whose interval covers the class.
    pub fn build(ec: Interval, candidates: &[Rule]) -> Self {
        let mut best: HashMap<NodeId, &Rule> = HashMap::new();
        for rule in candidates {
            if !rule.interval().contains_interval(&ec) {
                continue;
            }
            match best.get(&rule.source) {
                Some(current) if current.priority >= rule.priority => {}
                _ => {
                    best.insert(rule.source, rule);
                }
            }
        }
        ForwardingGraph {
            ec,
            next_hop: best.into_iter().map(|(n, r)| (n, r.link)).collect(),
        }
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.next_hop.len()
    }

    /// The links used by this class anywhere in the network.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.next_hop.values().copied()
    }

    /// Whether this class is forwarded along `link` by some switch.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.next_hop.values().any(|&l| l == link)
    }

    /// Finds all forwarding loops in the graph by following next-hops from
    /// every switch (the graph is functional, so this is linear).
    pub fn find_loops(&self, topology: &Topology) -> Vec<InvariantViolation> {
        let mut loops: Vec<Vec<NodeId>> = Vec::new();
        let mut state: HashMap<NodeId, u8> = HashMap::new(); // 1 = on path, 2 = done
        for &start in self.next_hop.keys() {
            if state.get(&start).copied() == Some(2) {
                continue;
            }
            let mut path: Vec<NodeId> = Vec::new();
            let mut cur = start;
            loop {
                match state.get(&cur).copied() {
                    Some(2) => break,
                    Some(1) => {
                        let pos = path.iter().position(|&n| n == cur).unwrap_or(0);
                        loops.push(canonical(path[pos..].to_vec()));
                        break;
                    }
                    _ => {}
                }
                state.insert(cur, 1);
                path.push(cur);
                let Some(&link) = self.next_hop.get(&cur) else {
                    break;
                };
                let next = topology.link(link).dst;
                if topology.is_drop_node(next) {
                    break;
                }
                cur = next;
            }
            for n in path {
                state.insert(n, 2);
            }
        }
        loops.sort();
        loops.dedup();
        loops
            .into_iter()
            .map(|nodes| InvariantViolation::ForwardingLoop {
                nodes,
                packets: vec![self.ec],
            })
            .collect()
    }
}

fn canonical(mut cycle: Vec<NodeId>) -> Vec<NodeId> {
    if cycle.is_empty() {
        return cycle;
    }
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, n)| **n)
        .map(|(i, _)| i)
        .unwrap_or(0);
    cycle.rotate_left(min_pos);
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::ip::IpPrefix;
    use netmodel::rule::RuleId;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    fn chain_topology() -> (Topology, Vec<NodeId>) {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        topo.add_link(n[0], n[1]);
        topo.add_link(n[1], n[2]);
        topo.add_link(n[2], n[0]);
        (topo, n)
    }

    #[test]
    fn build_picks_highest_priority_per_switch() {
        let (topo, n) = chain_topology();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let l20 = topo.link_between(n[2], n[0]).unwrap();
        let ec = Interval::new(0x0a000000, 0x0a000100);
        let rules = vec![
            Rule::forward(RuleId(1), p("10.0.0.0/8"), 1, n[0], l01),
            Rule::forward(RuleId(2), p("10.0.0.0/24"), 9, n[0], l20), // higher priority wins
            Rule::forward(RuleId(3), p("10.0.0.0/8"), 1, n[1], l12),
            Rule::forward(RuleId(4), p("192.168.0.0/16"), 5, n[2], l20), // does not cover the EC
        ];
        let g = ForwardingGraph::build(ec, &rules);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.next_hop[&n[0]], l20);
        assert_eq!(g.next_hop[&n[1]], l12);
        assert!(!g.next_hop.contains_key(&n[2]));
        assert!(g.uses_link(l20));
        assert!(!g.uses_link(l01));
        assert_eq!(g.links().count(), 2);
    }

    #[test]
    fn loop_free_graph_reports_nothing() {
        let (topo, n) = chain_topology();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let ec = Interval::new(0, 100);
        let rules = vec![
            Rule::forward(RuleId(1), p("0.0.0.0/0"), 1, n[0], l01),
            Rule::forward(RuleId(2), p("0.0.0.0/0"), 1, n[1], l12),
        ];
        let g = ForwardingGraph::build(ec, &rules);
        assert!(g.find_loops(&topo).is_empty());
    }

    #[test]
    fn three_node_cycle_detected_once() {
        let (topo, n) = chain_topology();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let l20 = topo.link_between(n[2], n[0]).unwrap();
        let ec = Interval::new(0, 100);
        let rules = vec![
            Rule::forward(RuleId(1), p("0.0.0.0/0"), 1, n[0], l01),
            Rule::forward(RuleId(2), p("0.0.0.0/0"), 1, n[1], l12),
            Rule::forward(RuleId(3), p("0.0.0.0/0"), 1, n[2], l20),
        ];
        let g = ForwardingGraph::build(ec, &rules);
        let loops = g.find_loops(&topo);
        assert_eq!(loops.len(), 1);
        match &loops[0] {
            InvariantViolation::ForwardingLoop { nodes, packets } => {
                assert_eq!(nodes.len(), 3);
                assert_eq!(packets, &vec![ec]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_link_breaks_cycle() {
        let (mut topo, n) = chain_topology();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let l12 = topo.link_between(n[1], n[2]).unwrap();
        let d2 = topo.drop_link(n[2]);
        let ec = Interval::new(0, 100);
        let rules = vec![
            Rule::forward(RuleId(1), p("0.0.0.0/0"), 1, n[0], l01),
            Rule::forward(RuleId(2), p("0.0.0.0/0"), 1, n[1], l12),
            Rule::drop(RuleId(3), p("0.0.0.0/0"), 1, n[2], d2),
        ];
        let g = ForwardingGraph::build(ec, &rules);
        assert!(g.find_loops(&topo).is_empty());
    }

    #[test]
    fn partial_coverage_rules_are_skipped() {
        // A rule covering only part of the EC must not contribute an edge —
        // the EC computation guarantees this cannot happen for real inputs,
        // but the graph builder still has to filter.
        let (topo, n) = chain_topology();
        let l01 = topo.link_between(n[0], n[1]).unwrap();
        let ec = Interval::new(0, 1 << 24); // all of 10/8's first quarter
        let rules = vec![Rule::forward(RuleId(1), p("0.0.1.0/24"), 1, n[0], l01)];
        let g = ForwardingGraph::build(ec, &rules);
        assert_eq!(g.edge_count(), 0);
    }
}
