//! # veriflow-ri — the Veriflow baseline, re-implemented
//!
//! The Delta-net paper compares against Veriflow, whose implementation and
//! datasets are not public. The authors therefore built **Veriflow-RI**, "a
//! re-implementation of their core idea to enable an honest comparison with
//! Delta-net" (§4.3.1), specialized to a single packet-header field. This
//! crate is that baseline:
//!
//! * [`trie`] — the one-dimensional binary prefix trie.
//! * [`ec`] — equivalence-class computation over an affected address range.
//! * [`forwarding_graph`] — one forwarding graph per equivalence class, with
//!   loop detection.
//! * [`checker`] — the [`VeriflowRi`] checker implementing the shared
//!   [`netmodel::Checker`] trait, so it can be driven by exactly the same
//!   harness as Delta-net.
//! * [`multifield`] — the cross-product generalization of the equivalence
//!   classes to multi-field header spaces, as a stateless full-plane
//!   oracle ([`scan_multifield`]) for the differential suites.
//!
//! Veriflow-RI's space complexity is linear in the number of rules; its time
//! complexity per update is quadratic in the worst case (it rebuilds
//! forwarding graphs for every affected class), in contrast to Delta-net's
//! amortized quasi-linear bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod ec;
pub mod forwarding_graph;
pub mod multifield;
pub mod trie;

pub use checker::{VeriflowConfig, VeriflowRi};
pub use ec::{equivalence_classes, EquivalenceClass};
pub use forwarding_graph::ForwardingGraph;
pub use multifield::scan_multifield;
pub use trie::PrefixTrie;
