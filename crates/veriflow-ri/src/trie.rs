//! The one-dimensional binary prefix trie at the heart of Veriflow-RI.
//!
//! The paper's re-implementation of Veriflow (§4.3.1) "is designed for
//! matches against a single packet header field. This explains why
//! Veriflow-RI uses a one-dimensional trie data structure in which every
//! node has at most two children (rather than three)". Rules are stored at
//! the trie node corresponding to their prefix; finding all rules whose
//! prefix overlaps a query prefix is a walk down the query path (collecting
//! the less-specific rules along the way) followed by a subtree traversal
//! (collecting the more-specific rules underneath).

use netmodel::ip::IpPrefix;
use netmodel::rule::RuleId;

/// A node of the binary trie.
#[derive(Clone, Debug, Default)]
struct TrieNode {
    children: [Option<Box<TrieNode>>; 2],
    /// Rules whose prefix ends exactly at this node.
    rules: Vec<RuleId>,
}

impl TrieNode {
    fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.children.iter().all(Option::is_none)
    }
}

/// A binary trie over prefixes of a fixed field width.
#[derive(Clone, Debug)]
pub struct PrefixTrie {
    root: TrieNode,
    width: u8,
    node_count: usize,
    rule_count: usize,
}

impl PrefixTrie {
    /// Creates an empty trie for prefixes over a `width`-bit field.
    pub fn new(width: u8) -> Self {
        PrefixTrie {
            root: TrieNode::default(),
            width,
            node_count: 1,
            rule_count: 0,
        }
    }

    /// The field width this trie indexes.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of rules stored.
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// Whether the trie stores no rule.
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    /// Number of allocated trie nodes (used for the memory accounting of
    /// Appendix D).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The bit path (most-significant bit first) of a prefix.
    fn bits(&self, prefix: &IpPrefix) -> impl Iterator<Item = usize> + '_ {
        let value = prefix.value();
        let width = self.width;
        (0..prefix.len()).map(move |i| ((value >> (width - 1 - i)) & 1) as usize)
    }

    /// Inserts a rule under its prefix.
    ///
    /// # Panics
    ///
    /// Panics if the prefix's width differs from the trie's width.
    pub fn insert(&mut self, prefix: &IpPrefix, id: RuleId) {
        assert_eq!(prefix.width(), self.width, "prefix width mismatch");
        let path: Vec<usize> = self.bits(prefix).collect();
        let mut node = &mut self.root;
        let mut created = 0usize;
        for bit in path {
            if node.children[bit].is_none() {
                node.children[bit] = Some(Box::default());
                created += 1;
            }
            node = node.children[bit].as_mut().unwrap();
        }
        node.rules.push(id);
        self.node_count += created;
        self.rule_count += 1;
    }

    /// Removes a rule stored under `prefix`; returns whether it was found.
    /// Empty nodes along the path are pruned.
    pub fn remove(&mut self, prefix: &IpPrefix, id: RuleId) -> bool {
        assert_eq!(prefix.width(), self.width, "prefix width mismatch");
        let path: Vec<usize> = self.bits(prefix).collect();
        let removed_nodes;
        let found;
        {
            fn recurse(
                node: &mut TrieNode,
                path: &[usize],
                id: RuleId,
                removed_nodes: &mut usize,
            ) -> bool {
                if path.is_empty() {
                    if let Some(pos) = node.rules.iter().position(|&r| r == id) {
                        node.rules.swap_remove(pos);
                        return true;
                    }
                    return false;
                }
                let bit = path[0];
                let Some(child) = node.children[bit].as_mut() else {
                    return false;
                };
                let found = recurse(child, &path[1..], id, removed_nodes);
                if found && child.is_empty() {
                    node.children[bit] = None;
                    *removed_nodes += 1;
                }
                found
            }
            let mut removed = 0usize;
            found = recurse(&mut self.root, &path, id, &mut removed);
            removed_nodes = removed;
        }
        if found {
            self.rule_count -= 1;
            self.node_count -= removed_nodes;
        }
        found
    }

    /// All rules whose prefix overlaps `prefix`: the rules on the path from
    /// the root to the prefix's node (less specific or equal) plus every
    /// rule in the subtree below it (more specific).
    pub fn overlapping(&self, prefix: &IpPrefix) -> Vec<RuleId> {
        let mut out = Vec::new();
        let mut node = &self.root;
        out.extend_from_slice(&node.rules);
        for bit in self.bits(prefix) {
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    out.extend_from_slice(&node.rules);
                }
                None => return out,
            }
        }
        // `node` is now the prefix's own node, whose rules were already
        // collected; descend into both subtrees for more-specific rules.
        let mut stack: Vec<&TrieNode> = node.children.iter().filter_map(|c| c.as_deref()).collect();
        while let Some(n) = stack.pop() {
            out.extend_from_slice(&n.rules);
            stack.extend(n.children.iter().filter_map(|c| c.as_deref()));
        }
        out
    }

    /// All rules whose prefix matches (covers) the single field value.
    pub fn matching_value(&self, value: u128) -> Vec<RuleId> {
        let mut out = Vec::new();
        let mut node = &self.root;
        out.extend_from_slice(&node.rules);
        for i in 0..self.width {
            let bit = ((value >> (self.width - 1 - i)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    out.extend_from_slice(&node.rules);
                }
                None => break,
            }
        }
        out
    }

    /// Estimated heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.node_count * std::mem::size_of::<TrieNode>()
            + self.rule_count * std::mem::size_of::<RuleId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_overlap_nested_prefixes() {
        let mut t = PrefixTrie::new(32);
        t.insert(&p("10.0.0.0/8"), RuleId(1));
        t.insert(&p("10.1.0.0/16"), RuleId(2));
        t.insert(&p("10.1.2.0/24"), RuleId(3));
        t.insert(&p("192.168.0.0/16"), RuleId(4));
        assert_eq!(t.len(), 4);

        let mut ov = t.overlapping(&p("10.1.0.0/16"));
        ov.sort();
        assert_eq!(ov, vec![RuleId(1), RuleId(2), RuleId(3)]);

        let mut ov = t.overlapping(&p("10.1.2.0/24"));
        ov.sort();
        assert_eq!(ov, vec![RuleId(1), RuleId(2), RuleId(3)]);

        let ov = t.overlapping(&p("192.168.0.0/16"));
        assert_eq!(ov, vec![RuleId(4)]);

        let mut ov = t.overlapping(&p("0.0.0.0/0"));
        ov.sort();
        assert_eq!(ov.len(), 4);

        // A sibling prefix overlaps nothing.
        assert!(t.overlapping(&p("11.0.0.0/8")).is_empty());
    }

    #[test]
    fn default_route_overlaps_everything_and_vice_versa() {
        let mut t = PrefixTrie::new(32);
        t.insert(&p("0.0.0.0/0"), RuleId(1));
        t.insert(&p("172.16.0.0/12"), RuleId(2));
        let mut ov = t.overlapping(&p("172.16.5.0/24"));
        ov.sort();
        assert_eq!(ov, vec![RuleId(1), RuleId(2)]);
    }

    #[test]
    fn duplicate_prefix_holds_multiple_rules() {
        let mut t = PrefixTrie::new(32);
        t.insert(&p("10.0.0.0/8"), RuleId(1));
        t.insert(&p("10.0.0.0/8"), RuleId(2));
        let mut ov = t.overlapping(&p("10.0.0.0/8"));
        ov.sort();
        assert_eq!(ov, vec![RuleId(1), RuleId(2)]);
        assert!(t.remove(&p("10.0.0.0/8"), RuleId(1)));
        assert_eq!(t.overlapping(&p("10.0.0.0/8")), vec![RuleId(2)]);
    }

    #[test]
    fn remove_prunes_empty_nodes() {
        let mut t = PrefixTrie::new(32);
        let before = t.node_count();
        t.insert(&p("10.1.2.0/24"), RuleId(1));
        assert_eq!(t.node_count(), before + 24);
        assert!(t.remove(&p("10.1.2.0/24"), RuleId(1)));
        assert_eq!(t.node_count(), before);
        assert!(t.is_empty());
        // Removing again fails gracefully.
        assert!(!t.remove(&p("10.1.2.0/24"), RuleId(1)));
    }

    #[test]
    fn remove_keeps_shared_path_nodes() {
        let mut t = PrefixTrie::new(32);
        t.insert(&p("10.1.0.0/16"), RuleId(1));
        t.insert(&p("10.1.2.0/24"), RuleId(2));
        assert!(t.remove(&p("10.1.2.0/24"), RuleId(2)));
        // The /16 node must still be reachable.
        assert_eq!(t.overlapping(&p("10.1.0.0/16")), vec![RuleId(1)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn matching_value_walks_the_path() {
        let mut t = PrefixTrie::new(32);
        t.insert(&p("10.0.0.0/8"), RuleId(1));
        t.insert(&p("10.1.0.0/16"), RuleId(2));
        t.insert(&p("10.2.0.0/16"), RuleId(3));
        let mut m = t.matching_value(u128::from(0x0a01_0203u32));
        m.sort();
        assert_eq!(m, vec![RuleId(1), RuleId(2)]);
        assert_eq!(t.matching_value(u128::from(0x0b00_0000u32)), vec![]);
    }

    #[test]
    fn zero_length_prefix_sits_at_root() {
        let mut t = PrefixTrie::new(32);
        t.insert(&p("0.0.0.0/0"), RuleId(9));
        assert_eq!(t.matching_value(12345), vec![RuleId(9)]);
        assert!(t.remove(&p("0.0.0.0/0"), RuleId(9)));
        assert!(t.is_empty());
    }

    #[test]
    fn memory_grows_with_rules() {
        let mut t = PrefixTrie::new(32);
        let before = t.memory_bytes();
        for i in 0..100u32 {
            t.insert(&IpPrefix::ipv4(i << 8, 24), RuleId(u64::from(i)));
        }
        assert!(t.memory_bytes() > before);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut t = PrefixTrie::new(32);
        t.insert(&IpPrefix::new(0, 2, 4), RuleId(1));
    }
}
