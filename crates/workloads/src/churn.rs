//! Sustained insert/remove churn with flapping prefixes.
//!
//! BGP route flaps and SDN-IP reconvergence produce exactly the update
//! pattern the paper's §3.2.2 garbage-collection remark worries about: a
//! long-lived baseline data plane plus waves of short-lived rules whose
//! interval bounds die when the wave is withdrawn. Each flap cycle
//! advertises a *fresh* set of prefixes (route churn rarely re-announces
//! bit-identical more-specifics), so without compaction the engine's
//! atom-id space, owner arena, and label bitsets grow monotonically with
//! the number of cycles even though the live rule set returns to the
//! baseline after every cycle.
//!
//! The generated trace is deterministic given the seed and is what the
//! `Churn` dataset, the compaction bench experiment, and the compaction
//! property tests replay.

use crate::bgp::{generate_prefixes, PrefixGenConfig};
use crate::rulegen::{generate_data_plane, PriorityMode};
use crate::topologies::{ring_with_borders, GeneratedTopology};
use netmodel::rule::{Rule, RuleId};
use netmodel::trace::Trace;

/// Configuration of the flapping-prefix churn generator.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Long-lived prefixes installed once and never withdrawn (the stable
    /// data plane the memory trajectory is measured against).
    pub stable_prefixes: usize,
    /// Short-lived prefixes advertised (and fully withdrawn) per cycle.
    pub flapping_prefixes: usize,
    /// Number of advertise/withdraw cycles.
    pub cycles: usize,
    /// RNG seed (prefix populations, egress choice, priorities).
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            stable_prefixes: 200,
            flapping_prefixes: 80,
            cycles: 20,
            seed: 0xF1A9,
        }
    }
}

/// A churn trace plus the boundary the memory-trajectory measurements need.
#[derive(Clone, Debug)]
pub struct ChurnTrace {
    /// The replayable operations: stable inserts, then the flap cycles.
    pub trace: Trace,
    /// Number of leading operations that build the stable baseline; the
    /// pre-churn memory snapshot is taken after replaying exactly this many.
    pub baseline_ops: usize,
}

/// Generates the flapping churn trace over `topo`.
///
/// The stable plane is installed first (shortest-path rules, random
/// priorities). Every cycle then advertises a fresh prefix population
/// (different bounds each cycle, drawn with heavy overlap so atoms split
/// aggressively), and withdraws it again in reverse order. Rule ids are
/// globally unique across the whole trace.
pub fn flapping_churn(topo: &GeneratedTopology, config: ChurnConfig) -> ChurnTrace {
    let mut trace = Trace::new();
    let mut next_id = 0u64;
    let mut push_plane = |trace: &mut Trace, rules: &[Rule], withdraw: bool| {
        let mut ids = Vec::with_capacity(rules.len());
        for r in rules {
            let rule = Rule {
                id: RuleId(next_id),
                ..*r
            };
            next_id += 1;
            ids.push(rule.id);
            trace.push_insert(rule);
        }
        if withdraw {
            // Reverse order: freshest routes fall away first, the same
            // shape BGP convergence produces.
            for id in ids.into_iter().rev() {
                trace.push_remove(id);
            }
        }
    };

    let stable = generate_prefixes(PrefixGenConfig {
        count: config.stable_prefixes,
        overlap_percent: 35,
        seed: config.seed,
    });
    let base = generate_data_plane(topo, &stable, PriorityMode::Random, config.seed);
    push_plane(&mut trace, &base.rules, false);
    let baseline_ops = trace.len();

    for cycle in 0..config.cycles {
        let cycle_seed = config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cycle as u64 + 1));
        let flapping = generate_prefixes(PrefixGenConfig {
            count: config.flapping_prefixes,
            overlap_percent: 50,
            seed: cycle_seed,
        });
        let wave = generate_data_plane(topo, &flapping, PriorityMode::Random, cycle_seed);
        push_plane(&mut trace, &wave.rules, true);
    }

    ChurnTrace {
        trace,
        baseline_ops,
    }
}

/// The default churn topology: an 8-switch ring with one border router per
/// switch — small enough that the trace length is dominated by the flap
/// cycles, not the topology.
pub fn churn_topology() -> GeneratedTopology {
    ring_with_borders("churn", 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnConfig {
        ChurnConfig {
            stable_prefixes: 20,
            flapping_prefixes: 8,
            cycles: 3,
            seed: 7,
        }
    }

    #[test]
    fn churn_returns_to_baseline_rule_set() {
        let topo = churn_topology();
        let churn = flapping_churn(&topo, tiny());
        // Every flapped rule is withdrawn again: the final data plane is
        // exactly the stable baseline.
        let final_dp = churn.trace.final_data_plane();
        let (stable, _) = churn.trace.split_at(churn.baseline_ops);
        assert_eq!(final_dp.len(), stable.len());
        assert!(stable.ops().iter().all(|op| op.is_insert()));
        assert!(churn.trace.remove_count() > 0);
    }

    #[test]
    fn cycles_use_fresh_rule_ids_and_prefix_bounds() {
        let topo = churn_topology();
        let churn = flapping_churn(&topo, tiny());
        let mut seen = std::collections::HashSet::new();
        let mut intervals = std::collections::HashSet::new();
        for op in churn.trace.ops() {
            if let netmodel::trace::Op::Insert(r) = op {
                assert!(seen.insert(r.id), "rule id {:?} reused", r.id);
                intervals.insert(r.interval());
            }
        }
        // Fresh populations per cycle: far more distinct intervals than one
        // cycle alone contributes.
        assert!(intervals.len() > tiny().stable_prefixes + tiny().flapping_prefixes);
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = churn_topology();
        let a = flapping_churn(&topo, tiny());
        let b = flapping_churn(&topo, tiny());
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.baseline_ops, b.baseline_ops);
    }
}
