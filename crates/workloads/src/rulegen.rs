//! Shortest-path rule generation — the INET/Libra mechanism of §4.2.1.
//!
//! "For each of these five network topologies, we generate forwarding rules
//! following the same mechanism as in Libra (Zeng et al., NSDI 2014), namely: we gather IP prefixes
//! [...] and compute the shortest paths in a network topology." Every prefix
//! is assigned an egress (destination) switch; every other switch gets one
//! rule forwarding the prefix one hop along a shortest path towards that
//! egress. Priorities are either random (the synthetic datasets: "rules are
//! inserted with a random priority") or derived from the prefix length
//! (SDN-IP's longest-prefix-match behaviour).

use crate::topologies::GeneratedTopology;
use netmodel::ip::IpPrefix;
use netmodel::rule::{Priority, Rule, RuleId};
use netmodel::topology::NodeId;
use netmodel::trace::Trace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How rule priorities are assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PriorityMode {
    /// Uniformly random priorities (the synthetic datasets of §4.2.1).
    Random,
    /// Priority equals the prefix length (longest-prefix match, as SDN-IP
    /// assigns them, §4.2.2).
    PrefixLength,
}

/// Configuration of the rule generator.
#[derive(Clone, Copy, Debug)]
pub struct RuleGenConfig {
    /// Priority assignment mode.
    pub priority_mode: PriorityMode,
    /// RNG seed (egress selection, random priorities, removal order).
    pub seed: u64,
    /// Whether to append removals of every rule in random order after the
    /// insertions ("After rules have been inserted, we remove them in
    /// random order", §4.2.1).
    pub append_removals: bool,
}

impl Default for RuleGenConfig {
    fn default() -> Self {
        RuleGenConfig {
            priority_mode: PriorityMode::Random,
            seed: 0xD41A,
            append_removals: true,
        }
    }
}

/// The output of rule generation: a replayable trace plus bookkeeping.
#[derive(Clone, Debug)]
pub struct GeneratedRules {
    /// The trace of insertions (and optionally removals).
    pub trace: Trace,
    /// Rules in insertion order (before any removals).
    pub rules: Vec<Rule>,
    /// The egress switch chosen for each prefix (parallel to the prefix
    /// slice passed to the generator).
    pub egress: Vec<NodeId>,
}

/// Generates shortest-path forwarding rules for `prefixes` over `topo`.
///
/// For each prefix an egress switch is picked among the topology's edge
/// nodes (round-robin perturbed by the seed); every other switch that can
/// reach the egress receives one forwarding rule along its shortest-path
/// next hop. Rule ids are consecutive from 0 in insertion order.
pub fn generate_rules(
    topo: &GeneratedTopology,
    prefixes: &[IpPrefix],
    config: RuleGenConfig,
) -> GeneratedRules {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Trace::new();
    let mut rules: Vec<Rule> = Vec::new();
    let mut egress_choices: Vec<NodeId> = Vec::with_capacity(prefixes.len());
    let edges = &topo.edge_nodes;
    assert!(!edges.is_empty(), "topology has no edge nodes");

    // Pre-compute the shortest-path next-hop tree per egress actually used.
    let mut next_hop_cache: std::collections::HashMap<
        NodeId,
        Vec<Option<netmodel::topology::LinkId>>,
    > = std::collections::HashMap::new();

    let mut next_id = 0u64;
    for (i, prefix) in prefixes.iter().enumerate() {
        let egress = edges[(i + rng.gen_range(0..edges.len())) % edges.len()];
        egress_choices.push(egress);
        let next = next_hop_cache
            .entry(egress)
            .or_insert_with(|| topo.topology.shortest_path_next_hop(egress));
        let priority: Priority = match config.priority_mode {
            PriorityMode::Random => rng.gen_range(1..=1_000_000),
            PriorityMode::PrefixLength => Priority::from(prefix.len()) + 1,
        };
        for node in topo.topology.switch_nodes().collect::<Vec<_>>() {
            if node == egress {
                continue;
            }
            let Some(link) = next[node.index()] else {
                continue;
            };
            let rule = Rule::forward(RuleId(next_id), *prefix, priority, node, link);
            next_id += 1;
            rules.push(rule);
            trace.push_insert(rule);
        }
    }

    if config.append_removals {
        let mut ids: Vec<RuleId> = rules.iter().map(|r| r.id).collect();
        ids.shuffle(&mut rng);
        for id in ids {
            trace.push_remove(id);
        }
    }

    GeneratedRules {
        trace,
        rules,
        egress: egress_choices,
    }
}

/// Configuration of the ACL-style multi-field generator
/// ([`generate_multifield_rules`]).
#[derive(Clone, Debug)]
pub struct MultiFieldConfig {
    /// Widths of the secondary header fields (e.g. `[8]` for dst × src on an
    /// 8-bit source axis, `[8, 4]` for dst × src × dport).
    pub sec_widths: Vec<u8>,
    /// How many ACL deny rules to generate per prefix.
    pub acl_per_prefix: usize,
    /// Probability that each secondary field of an ACL rule is constrained
    /// to a sub-range (an unconstrained field stays a wildcard). At least
    /// one field of every ACL rule is always constrained, so every deny is
    /// genuinely multi-field.
    pub constrain_fraction: f64,
    /// RNG seed (egress selection, priorities, ACL placement, ranges).
    pub seed: u64,
    /// Whether to append removals of every rule in random order.
    pub append_removals: bool,
}

impl Default for MultiFieldConfig {
    fn default() -> Self {
        MultiFieldConfig {
            sec_widths: vec![8],
            acl_per_prefix: 2,
            constrain_fraction: 0.7,
            seed: 0xAC1,
            append_removals: false,
        }
    }
}

/// The output of [`generate_multifield_rules`]: the trace, the rules, and
/// the topology augmented with the drop links the ACL denies point at.
#[derive(Clone, Debug)]
pub struct MultiFieldRules {
    /// The input topology plus one drop link per switch (deny targets).
    pub topology: netmodel::topology::Topology,
    /// The trace of insertions (and optionally removals).
    pub trace: Trace,
    /// Rules in insertion order (before any removals).
    pub rules: Vec<Rule>,
    /// The secondary field widths the rules were generated against.
    pub sec_widths: Vec<u8>,
}

/// Generates an ACL-style multi-field workload over `topo`: the usual
/// shortest-path forwarding rules per prefix (wildcard in every secondary
/// field), overlaid with higher-priority deny rules that drop a sub-range of
/// the secondary fields — "block these sources from reaching this prefix".
///
/// This is the dst × src (× dport) shape real ACLs take: routing is
/// destination-only, policy carves holes out of it along the other axes. The
/// returned topology is a copy of `topo.topology` with one drop link added
/// per switch, which the deny rules forward into.
pub fn generate_multifield_rules(
    topo: &GeneratedTopology,
    prefixes: &[IpPrefix],
    config: &MultiFieldConfig,
) -> MultiFieldRules {
    use netmodel::header::SecondaryMatch;
    use netmodel::interval::Interval;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut topology = topo.topology.clone();
    let switches: Vec<NodeId> = topology.switch_nodes().collect();
    let drop_links: Vec<_> = switches.iter().map(|&s| topology.drop_link(s)).collect();

    // Base forwarding plane: identical mechanism to [`generate_rules`],
    // priorities capped so every ACL deny outranks every forwarding rule.
    const FWD_PRIORITY_CEIL: Priority = 1_000;
    let edges = &topo.edge_nodes;
    assert!(!edges.is_empty(), "topology has no edge nodes");
    let mut trace = Trace::new();
    let mut rules: Vec<Rule> = Vec::new();
    let mut next_hop_cache: std::collections::HashMap<
        NodeId,
        Vec<Option<netmodel::topology::LinkId>>,
    > = std::collections::HashMap::new();
    let mut next_id = 0u64;
    for (i, prefix) in prefixes.iter().enumerate() {
        let egress = edges[(i + rng.gen_range(0..edges.len())) % edges.len()];
        let next = next_hop_cache
            .entry(egress)
            .or_insert_with(|| topology.shortest_path_next_hop(egress));
        let priority: Priority = rng.gen_range(1..FWD_PRIORITY_CEIL);
        for &node in &switches {
            if node == egress {
                continue;
            }
            let Some(link) = next[node.index()] else {
                continue;
            };
            let rule = Rule::forward(RuleId(next_id), *prefix, priority, node, link);
            next_id += 1;
            rules.push(rule);
            trace.push_insert(rule);
        }
        // ACL overlay: deny a sub-range of the secondary fields for this
        // prefix at a few switches, above every forwarding priority.
        for _ in 0..config.acl_per_prefix {
            let si = rng.gen_range(0..switches.len());
            let mut intervals: Vec<Interval> = Vec::with_capacity(config.sec_widths.len());
            let mut constrained = false;
            for (fi, &width) in config.sec_widths.iter().enumerate() {
                let full = 1u128 << width;
                let force = fi + 1 == config.sec_widths.len() && !constrained;
                if force || rng.gen_bool(config.constrain_fraction) {
                    let lo = rng.gen_range(0..full);
                    let hi = rng.gen_range(lo + 1..=full);
                    intervals.push(Interval::new(lo, hi));
                    constrained = true;
                } else {
                    intervals.push(Interval::new(0, full));
                }
            }
            let deny = Rule::drop(
                RuleId(next_id),
                *prefix,
                FWD_PRIORITY_CEIL + rng.gen_range(1..1_000),
                switches[si],
                drop_links[si],
            )
            .with_secondary(SecondaryMatch::new(&intervals));
            next_id += 1;
            rules.push(deny);
            trace.push_insert(deny);
        }
    }

    if config.append_removals {
        let mut ids: Vec<RuleId> = rules.iter().map(|r| r.id).collect();
        ids.shuffle(&mut rng);
        for id in ids {
            trace.push_remove(id);
        }
    }

    MultiFieldRules {
        topology,
        trace,
        rules,
        sec_widths: config.sec_widths.clone(),
    }
}

/// Generates only the consistent data plane (insertions, no removals) — the
/// input used by the "what if" experiments of §4.3.2.
pub fn generate_data_plane(
    topo: &GeneratedTopology,
    prefixes: &[IpPrefix],
    priority_mode: PriorityMode,
    seed: u64,
) -> GeneratedRules {
    generate_rules(
        topo,
        prefixes,
        RuleGenConfig {
            priority_mode,
            seed,
            append_removals: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::{generate_prefixes, PrefixGenConfig};
    use crate::topologies::{four_switch_ring, ring};
    use netmodel::fib::NetworkFib;
    use netmodel::packet::Packet;
    use netmodel::trace::Op;

    fn prefixes(n: usize) -> Vec<IpPrefix> {
        generate_prefixes(PrefixGenConfig {
            count: n,
            ..Default::default()
        })
    }

    #[test]
    fn every_non_egress_switch_gets_a_rule_per_prefix() {
        let topo = four_switch_ring();
        let pfx = prefixes(10);
        let gen = generate_rules(&topo, &pfx, RuleGenConfig::default());
        // 4 switches, one egress per prefix → 3 rules per prefix.
        assert_eq!(gen.rules.len(), 10 * 3);
        assert_eq!(gen.egress.len(), 10);
        // Trace has insert + removal for every rule.
        assert_eq!(gen.trace.len(), 2 * gen.rules.len());
        assert_eq!(gen.trace.insert_count(), gen.rules.len());
    }

    #[test]
    fn rules_follow_shortest_paths_to_egress() {
        let topo = ring("r6", 6);
        let pfx = prefixes(5);
        let gen = generate_data_plane(&topo, &pfx, PriorityMode::Random, 1);
        // Replay into a reference FIB and trace a packet of the first prefix
        // from an arbitrary switch: it must end at the egress (blackhole
        // there, because the egress has no rule for it).
        let mut fib = NetworkFib::new(topo.topology.clone());
        for op in gen.trace.ops() {
            if let Op::Insert(r) = op {
                fib.insert(*r);
            }
        }
        let egress = gen.egress[0];
        let addr = pfx[0].interval().lo();
        for start in topo.topology.switch_nodes() {
            if start == egress {
                continue;
            }
            let trace = fib.trace(start, Packet::to(addr));
            assert_eq!(
                *trace.path.last().unwrap(),
                egress,
                "packet from {start} did not reach egress {egress}"
            );
            // Shortest path in a 6-ring is at most 3 hops.
            assert!(trace.links.len() <= 3);
        }
    }

    #[test]
    fn priority_modes() {
        let topo = four_switch_ring();
        let pfx = prefixes(20);
        let by_len = generate_data_plane(&topo, &pfx, PriorityMode::PrefixLength, 2);
        for r in &by_len.rules {
            assert_eq!(r.priority, u32::from(r.prefix.len()) + 1);
        }
        let random = generate_data_plane(&topo, &pfx, PriorityMode::Random, 2);
        let distinct: std::collections::HashSet<u32> =
            random.rules.iter().map(|r| r.priority).collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn multifield_overlay_denies_outrank_forwarding() {
        let topo = four_switch_ring();
        let pfx = prefixes(6);
        let config = MultiFieldConfig::default();
        let gen = generate_multifield_rules(&topo, &pfx, &config);
        // 3 forwarding rules + 2 denies per prefix.
        assert_eq!(gen.rules.len(), 6 * (3 + 2));
        let max_fwd = gen
            .rules
            .iter()
            .filter(|r| !r.is_multifield())
            .map(|r| r.priority)
            .max()
            .unwrap();
        for deny in gen.rules.iter().filter(|r| r.is_multifield()) {
            assert!(deny.priority > max_fwd, "ACL deny must outrank forwarding");
            assert!(gen.topology.is_drop_link(deny.link));
            assert!(deny.sec.count() <= config.sec_widths.len());
        }
        // Every deny constrains at least one secondary field.
        assert!(gen.rules.iter().filter(|r| r.is_multifield()).count() == 6 * 2);
        // Deterministic.
        let again = generate_multifield_rules(&topo, &pfx, &config);
        assert_eq!(gen.trace, again.trace);
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = four_switch_ring();
        let pfx = prefixes(15);
        let a = generate_rules(&topo, &pfx, RuleGenConfig::default());
        let b = generate_rules(&topo, &pfx, RuleGenConfig::default());
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn removals_cover_every_rule_exactly_once() {
        let topo = four_switch_ring();
        let pfx = prefixes(8);
        let gen = generate_rules(&topo, &pfx, RuleGenConfig::default());
        let mut removed: Vec<u64> = gen
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Remove(id) => Some(id.0),
                _ => None,
            })
            .collect();
        removed.sort_unstable();
        let mut inserted: Vec<u64> = gen.rules.iter().map(|r| r.id.0).collect();
        inserted.sort_unstable();
        assert_eq!(removed, inserted);
        // Final data plane is empty.
        assert!(gen.trace.final_data_plane().is_empty());
    }
}
