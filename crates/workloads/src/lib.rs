//! # workloads — dataset and workload generation for the Delta-net evaluation
//!
//! The paper's evaluation (§4.2) uses eight datasets derived from real
//! topologies, real BGP dumps, and a live ONOS/SDN-IP deployment. None of
//! those artefacts are redistributable, so this crate generates synthetic
//! equivalents with the same structure (see the module docs below for the substitution
//! rationale):
//!
//! * [`topologies`] — campus / ISP-backbone / WAN / ring topology generators
//!   at the node and link scale of Table 2.
//! * [`bgp`] — Route-Views-style prefix populations with realistic length
//!   distribution and overlap.
//! * [`rulegen`] — shortest-path forwarding-rule generation with random or
//!   longest-prefix priorities, plus insert-then-remove trace construction.
//! * [`sdnip`] — an SDN-IP/ONOS controller simulator producing rule churn
//!   for link failures and recoveries.
//! * [`churn`] — sustained flapping-prefix insert/remove churn, the
//!   workload behind the atom-compaction evaluation.
//! * [`datasets`] — the eight named datasets of Table 2 at configurable
//!   scale ([`datasets::ScaleProfile`]).
//!
//! Everything is deterministic given the built-in seeds, so every table and
//! figure produced by the `bench` crate is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
pub mod churn;
pub mod datasets;
pub mod rulegen;
pub mod sdnip;
pub mod topologies;

pub use churn::{ChurnConfig, ChurnTrace};
pub use datasets::{build, build_all, Dataset, DatasetId, ScaleProfile, Table2Row};
pub use rulegen::{generate_multifield_rules, MultiFieldConfig, MultiFieldRules};
pub use topologies::GeneratedTopology;
