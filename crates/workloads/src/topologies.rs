//! Topology generators for the evaluation datasets.
//!
//! The paper evaluates on the UC Berkeley campus network, four Rocketfuel
//! ISP topologies (ASes 1755, 1239/INET, 3257, 6461), the Airtel (AS 9498)
//! topology from the Internet Topology Zoo, and a 4-switch ring (§4.2). The
//! measured topology files are not redistributable, so this module generates
//! topologies of the same scale class deterministically:
//!
//! * campus networks — a core/distribution/access hierarchy;
//! * ISP backbones — preferential-attachment graphs with a target node and
//!   link count matching Table 2;
//! * Airtel — a two-level ring-and-spur WAN with one border router per
//!   switch;
//! * the 4-switch ring — exactly as described.
//!
//! All generators are seeded and therefore reproducible.

use netmodel::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated topology plus the metadata the workload generators need.
#[derive(Clone, Debug)]
pub struct GeneratedTopology {
    /// Human-readable name (e.g. "rf-1755").
    pub name: String,
    /// The topology itself (switch nodes only; drop links are added later by
    /// rule generation when needed).
    pub topology: Topology,
    /// The switches that can act as egress points (border / edge switches).
    pub edge_nodes: Vec<NodeId>,
}

impl GeneratedTopology {
    /// Number of switch nodes.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.topology.link_count()
    }
}

/// A plain 4-switch ring (no border routers). The `4Switch` *dataset* uses
/// [`four_switch_with_borders`], which additionally attaches one external
/// border router per switch as in the paper's Quagga setup (§4.2.2).
pub fn four_switch_ring() -> GeneratedTopology {
    ring("4switch", 4)
}

/// The 4-switch ring with one external border router per switch — the
/// topology of the `4Switch` dataset.
pub fn four_switch_with_borders() -> GeneratedTopology {
    ring_with_borders("4switch", 4)
}

/// A bidirectional ring of `n` switches, each attached to one external
/// border router named `br{i}`. Edge nodes are the switches.
pub fn ring_with_borders(name: &str, n: usize) -> GeneratedTopology {
    let mut g = ring(name, n);
    let switches = g.edge_nodes.clone();
    for (i, &s) in switches.iter().enumerate() {
        let br = g.topology.add_node(format!("br{i}"));
        g.topology.add_bidi_link(s, br);
    }
    g
}

/// A bidirectional ring of `n` switches; every switch is an edge node.
pub fn ring(name: &str, n: usize) -> GeneratedTopology {
    assert!(n >= 2, "a ring needs at least two switches");
    let mut topo = Topology::new();
    let nodes = topo.add_nodes("s", n);
    for i in 0..n {
        let j = (i + 1) % n;
        topo.add_bidi_link(nodes[i], nodes[j]);
    }
    GeneratedTopology {
        name: name.to_string(),
        topology: topo,
        edge_nodes: nodes,
    }
}

/// A campus-style hierarchy in the spirit of the UC Berkeley dataset:
/// `core` fully meshed core routers, `dist` distribution routers each
/// attached to two cores, and `access` access switches attached to two
/// distribution routers. Edge nodes are the access switches.
pub fn campus(name: &str, core: usize, dist: usize, access: usize, seed: u64) -> GeneratedTopology {
    assert!(core >= 1 && dist >= 1 && access >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topo = Topology::new();
    let cores = topo.add_nodes("core", core);
    let dists = topo.add_nodes("dist", dist);
    let accesses = topo.add_nodes("acc", access);
    // Full mesh among cores.
    for i in 0..core {
        for j in (i + 1)..core {
            topo.add_bidi_link(cores[i], cores[j]);
        }
    }
    // Each distribution router attaches to two distinct cores.
    for (i, &d) in dists.iter().enumerate() {
        let a = cores[i % core];
        let b = cores[(i + 1 + rng.gen_range(0..core.max(2) - 1)) % core];
        topo.add_bidi_link(d, a);
        if b != a {
            topo.add_bidi_link(d, b);
        }
    }
    // Each access switch attaches to two distribution routers.
    for (i, &acc) in accesses.iter().enumerate() {
        let a = dists[i % dist];
        let b = dists[(i + 1 + rng.gen_range(0..dist.max(2) - 1)) % dist];
        topo.add_bidi_link(acc, a);
        if b != a {
            topo.add_bidi_link(acc, b);
        }
    }
    GeneratedTopology {
        name: name.to_string(),
        topology: topo,
        edge_nodes: accesses,
    }
}

/// The Berkeley-class campus topology (23 nodes in Table 2).
pub fn berkeley() -> GeneratedTopology {
    campus("berkeley", 3, 6, 14, 0xBE11)
}

/// An ISP backbone in the spirit of the Rocketfuel topologies: a
/// preferential-attachment graph over `nodes` routers in which each new
/// router attaches to `attach` existing routers (weighted by degree), plus
/// extra random shortcut links until roughly `target_links` directed links
/// exist. Edge nodes are the lowest-degree third of the routers (PoP edge
/// routers).
pub fn isp_backbone(
    name: &str,
    nodes: usize,
    attach: usize,
    target_links: usize,
    seed: u64,
) -> GeneratedTopology {
    assert!(nodes >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topo = Topology::new();
    let ids = topo.add_nodes("r", nodes);
    let mut degree = vec![0usize; nodes];
    let connect = |topo: &mut Topology, degree: &mut Vec<usize>, a: usize, b: usize| {
        if a != b && topo.link_between(ids[a], ids[b]).is_none() {
            topo.add_bidi_link(ids[a], ids[b]);
            degree[a] += 1;
            degree[b] += 1;
        }
    };
    // Seed triangle.
    connect(&mut topo, &mut degree, 0, 1);
    connect(&mut topo, &mut degree, 1, 2);
    connect(&mut topo, &mut degree, 2, 0);
    // Preferential attachment.
    for new in 3..nodes {
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < attach.min(new) && guard < 10 * attach + 20 {
            guard += 1;
            let total: usize = degree[..new].iter().sum::<usize>().max(1);
            let mut pick = rng.gen_range(0..total);
            let mut target = 0usize;
            for (i, &d) in degree[..new].iter().enumerate() {
                if pick < d.max(1) {
                    target = i;
                    break;
                }
                pick = pick.saturating_sub(d.max(1));
            }
            let before = topo.link_count();
            connect(&mut topo, &mut degree, new, target);
            if topo.link_count() > before {
                attached += 1;
            }
        }
    }
    // Random shortcuts until the target (directed) link count is reached.
    let mut guard = 0usize;
    while topo.link_count() < target_links && guard < target_links * 4 {
        guard += 1;
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        connect(&mut topo, &mut degree, a, b);
    }
    // Edge nodes: the third of routers with the smallest degree.
    let mut by_degree: Vec<usize> = (0..nodes).collect();
    by_degree.sort_by_key(|&i| degree[i]);
    let edge_nodes: Vec<NodeId> = by_degree
        .iter()
        .take((nodes / 3).max(1))
        .map(|&i| ids[i])
        .collect();
    GeneratedTopology {
        name: name.to_string(),
        topology: topo,
        edge_nodes,
    }
}

/// Rocketfuel AS 1755 class (87 nodes, ~2,300 links in Table 2).
pub fn rocketfuel_1755() -> GeneratedTopology {
    isp_backbone("rf-1755", 87, 4, 2308, 1755)
}

/// Rocketfuel AS 3257 class (161 nodes, ~9,400 links).
pub fn rocketfuel_3257() -> GeneratedTopology {
    isp_backbone("rf-3257", 161, 8, 9432, 3257)
}

/// Rocketfuel AS 6461 class (138 nodes, ~8,100 links).
pub fn rocketfuel_6461() -> GeneratedTopology {
    isp_backbone("rf-6461", 138, 8, 8140, 6461)
}

/// The INET wide-area backbone (Rocketfuel AS 1239 derived; ~316 nodes,
/// ~40,000 links in Table 2). The full link count is kept configurable by
/// the dataset layer; this is the unscaled shape.
pub fn inet() -> GeneratedTopology {
    isp_backbone("inet", 316, 12, 40770, 1239)
}

/// The Airtel (AS 9498) WAN: `switches` OpenFlow switches in a ring with
/// chords, each connected to one external border router (§4.2.2). Border
/// routers are modelled as extra nodes; the switches are the edge nodes
/// (rules are installed on switches only).
pub fn airtel(switches: usize, seed: u64) -> GeneratedTopology {
    assert!(switches >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topo = Topology::new();
    let sw = topo.add_nodes("sw", switches);
    // Ring backbone.
    for i in 0..switches {
        topo.add_bidi_link(sw[i], sw[(i + 1) % switches]);
    }
    // A few chords to mirror the WAN's mesh-ier core.
    for _ in 0..(switches / 2) {
        let a = rng.gen_range(0..switches);
        let b = rng.gen_range(0..switches);
        if a != b {
            topo.add_bidi_link(sw[a], sw[b]);
        }
    }
    // One border router per switch.
    for (i, &s) in sw.iter().enumerate() {
        let br = topo.add_node(format!("br{i}"));
        topo.add_bidi_link(s, br);
    }
    GeneratedTopology {
        name: "airtel".to_string(),
        topology: topo,
        edge_nodes: sw,
    }
}

/// The default Airtel instance used by the datasets (16 switches, as in the
/// paper's Mininet emulation).
pub fn airtel_default() -> GeneratedTopology {
    airtel(16, 9498)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_switch_ring_shape() {
        let g = four_switch_ring();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.link_count(), 8);
        assert!(g.topology.is_strongly_connected());
        assert_eq!(g.edge_nodes.len(), 4);
    }

    #[test]
    fn berkeley_scale_class() {
        let g = berkeley();
        assert_eq!(g.node_count(), 23);
        assert!(
            g.link_count() >= 60,
            "campus too sparse: {}",
            g.link_count()
        );
        assert!(g.topology.is_strongly_connected());
        assert!(!g.edge_nodes.is_empty());
    }

    #[test]
    fn rocketfuel_1755_scale_class() {
        let g = rocketfuel_1755();
        assert_eq!(g.node_count(), 87);
        assert!(
            g.link_count() >= 1800 && g.link_count() <= 2400,
            "links {}",
            g.link_count()
        );
        assert!(g.topology.is_strongly_connected());
    }

    #[test]
    fn rocketfuel_3257_and_6461_scale_class() {
        let g = rocketfuel_3257();
        assert_eq!(g.node_count(), 161);
        assert!(g.link_count() >= 5000, "links {}", g.link_count());
        let g = rocketfuel_6461();
        assert_eq!(g.node_count(), 138);
        assert!(g.link_count() >= 4500, "links {}", g.link_count());
    }

    #[test]
    fn airtel_has_one_border_router_per_switch() {
        let g = airtel_default();
        // 16 switches + 16 border routers.
        assert_eq!(g.node_count(), 32);
        assert_eq!(g.edge_nodes.len(), 16);
        assert!(g.topology.is_strongly_connected());
        // Every switch has a border router neighbour.
        for (i, &s) in g.edge_nodes.iter().enumerate() {
            let br = g.topology.node_by_name(&format!("br{i}")).unwrap();
            assert!(g.topology.link_between(s, br).is_some());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = rocketfuel_1755();
        let b = rocketfuel_1755();
        assert_eq!(a.link_count(), b.link_count());
        assert_eq!(a.edge_nodes, b.edge_nodes);
        let a = airtel(8, 7);
        let b = airtel(8, 7);
        assert_eq!(a.link_count(), b.link_count());
    }

    #[test]
    fn ring_requires_two_switches() {
        let g = ring("tiny", 2);
        assert_eq!(g.link_count(), 2);
        assert!(g.topology.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "at least two switches")]
    fn degenerate_ring_panics() {
        let _ = ring("broken", 1);
    }
}
