//! The eight evaluation datasets of Table 2, at configurable scale.
//!
//! The paper's datasets hold up to 250 million operations and were run on a
//! 94 GB machine; a laptop-scale reproduction needs the same *structure*
//! (topology class, prefix overlap, insert-then-remove or SDN-IP churn) at a
//! smaller magnitude. [`ScaleProfile`] controls the magnitude; the dataset
//! identifiers and the construction recipes follow §4.2 exactly:
//!
//! * `Berkeley`, `INET`, `RF 1755/3257/6461` — synthetic datasets: prefixes
//!   from a Route-Views-like population, shortest-path rules, random
//!   priorities, inserted then removed in random order.
//! * `Airtel 1 / Airtel 2` — SDN-IP churn from single / paired link
//!   failures with recovery.
//! * `4Switch` — repeated SDN-IP advertisement rounds on a 4-switch ring,
//!   insertions only.

use crate::bgp::{generate_prefixes, PrefixGenConfig};
use crate::rulegen::{generate_rules, PriorityMode, RuleGenConfig};
use crate::sdnip::{airtel_pair_failures, airtel_single_failures, four_switch_rounds, SdnIpConfig};
use crate::topologies::{
    airtel_default, berkeley, four_switch_with_borders, inet, rocketfuel_1755, rocketfuel_3257,
    rocketfuel_6461, GeneratedTopology,
};
use netmodel::trace::Trace;
use serde::{Deserialize, Serialize};

/// Identifiers of the eight datasets of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// UC Berkeley campus class.
    Berkeley,
    /// The INET wide-area backbone (Rocketfuel AS 1239 class).
    Inet,
    /// Rocketfuel AS 1755 class.
    Rf1755,
    /// Rocketfuel AS 3257 class.
    Rf3257,
    /// Rocketfuel AS 6461 class.
    Rf6461,
    /// SDN-IP on the Airtel WAN, single link failures.
    Airtel1,
    /// SDN-IP on the Airtel WAN, 2-pair link failures.
    Airtel2,
    /// SDN-IP rounds on a 4-switch ring, insertions only.
    FourSwitch,
    /// Flapping-prefix churn on a ring backbone (not part of Table 2; the
    /// rule-removal-heavy workload behind the atom-compaction evaluation).
    Churn,
}

impl DatasetId {
    /// The eight Table 2 datasets ([`DatasetId::Churn`] is deliberately not
    /// listed: the paper's tables stay at eight rows, and the churn workload
    /// is reported separately by the compaction experiment).
    pub const ALL: [DatasetId; 8] = [
        DatasetId::Berkeley,
        DatasetId::Inet,
        DatasetId::Rf1755,
        DatasetId::Rf3257,
        DatasetId::Rf6461,
        DatasetId::Airtel1,
        DatasetId::Airtel2,
        DatasetId::FourSwitch,
    ];

    /// The display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Berkeley => "Berkeley",
            DatasetId::Inet => "INET",
            DatasetId::Rf1755 => "RF 1755",
            DatasetId::Rf3257 => "RF 3257",
            DatasetId::Rf6461 => "RF 6461",
            DatasetId::Airtel1 => "Airtel 1",
            DatasetId::Airtel2 => "Airtel 2",
            DatasetId::FourSwitch => "4Switch",
            DatasetId::Churn => "Churn",
        }
    }
}

/// How large to make each dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleProfile {
    /// A few thousand operations per dataset — for unit/integration tests.
    Tiny,
    /// Tens of thousands of operations — the default for the bench binaries.
    Small,
    /// Low hundreds of thousands of operations — for longer runs.
    Medium,
}

impl ScaleProfile {
    /// Number of prefixes to use for a synthetic (shortest-path) dataset,
    /// given the topology's node count. Chosen so the operation count lands
    /// in the profile's target band.
    fn synthetic_prefix_count(self, nodes: usize) -> usize {
        let target_rules = match self {
            ScaleProfile::Tiny => 2_000,
            ScaleProfile::Small => 40_000,
            ScaleProfile::Medium => 150_000,
        };
        (target_rules / nodes.max(1)).max(10)
    }

    /// Prefixes each border router advertises in the Airtel datasets.
    fn airtel_prefixes_per_router(self) -> usize {
        match self {
            ScaleProfile::Tiny => 10,
            ScaleProfile::Small => 100, // the paper's value
            ScaleProfile::Medium => 100,
        }
    }

    /// Cap on injected single-link failures (Airtel 1).
    fn airtel_failure_cap(self) -> Option<usize> {
        match self {
            ScaleProfile::Tiny => Some(4),
            ScaleProfile::Small => None,
            ScaleProfile::Medium => None,
        }
    }

    /// Cap on injected 2-pair failures (Airtel 2).
    fn airtel_pair_cap(self) -> Option<usize> {
        match self {
            ScaleProfile::Tiny => Some(6),
            ScaleProfile::Small => Some(60),
            ScaleProfile::Medium => Some(300),
        }
    }

    /// `(prefixes per router, rounds)` for the 4Switch dataset.
    fn four_switch_params(self) -> (usize, usize) {
        match self {
            ScaleProfile::Tiny => (50, 2),
            ScaleProfile::Small => (1_000, 4),
            ScaleProfile::Medium => (2_500, 14),
        }
    }

    /// Parameters of the flapping-prefix churn workload.
    pub fn churn_config(self) -> crate::churn::ChurnConfig {
        let (stable_prefixes, flapping_prefixes, cycles) = match self {
            ScaleProfile::Tiny => (40, 15, 8),
            ScaleProfile::Small => (200, 80, 20),
            ScaleProfile::Medium => (400, 150, 50),
        };
        crate::churn::ChurnConfig {
            stable_prefixes,
            flapping_prefixes,
            cycles,
            seed: 0xF1A9,
        }
    }
}

/// A fully built dataset: topology plus replayable trace.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which dataset this is.
    pub id: DatasetId,
    /// The topology the trace refers to.
    pub topology: GeneratedTopology,
    /// The replayable operation trace.
    pub trace: Trace,
}

impl Dataset {
    /// Dataset statistics in the shape of Table 2's columns.
    pub fn table2_row(&self) -> Table2Row {
        Table2Row {
            name: self.id.name().to_string(),
            nodes: self.topology.node_count(),
            links: self.topology.link_count(),
            operations: self.trace.len(),
            peak_rules: self.trace.peak_rule_count(),
        }
    }
}

/// One row of Table 2 (plus the peak rule count, useful for sanity checks).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset name.
    pub name: String,
    /// Number of nodes in the edge-labelled graph.
    pub nodes: usize,
    /// Maximum number of links.
    pub links: usize,
    /// Total number of operations in the trace.
    pub operations: usize,
    /// Maximum number of simultaneously installed rules.
    pub peak_rules: usize,
}

/// Builds a synthetic shortest-path dataset (Berkeley / INET / RF *).
fn synthetic(id: DatasetId, topo: GeneratedTopology, scale: ScaleProfile, seed: u64) -> Dataset {
    let prefix_count = scale.synthetic_prefix_count(topo.node_count());
    let prefixes = generate_prefixes(PrefixGenConfig {
        count: prefix_count,
        overlap_percent: 35,
        seed,
    });
    let rules = generate_rules(
        &topo,
        &prefixes,
        RuleGenConfig {
            priority_mode: PriorityMode::Random,
            seed,
            append_removals: true,
        },
    );
    Dataset {
        id,
        topology: topo,
        trace: rules.trace,
    }
}

/// Builds one dataset at the given scale.
pub fn build(id: DatasetId, scale: ScaleProfile) -> Dataset {
    match id {
        DatasetId::Berkeley => synthetic(id, berkeley(), scale, 0xB),
        DatasetId::Inet => synthetic(id, inet(), scale, 0x1239),
        DatasetId::Rf1755 => synthetic(id, rocketfuel_1755(), scale, 0x1755),
        DatasetId::Rf3257 => synthetic(id, rocketfuel_3257(), scale, 0x3257),
        DatasetId::Rf6461 => synthetic(id, rocketfuel_6461(), scale, 0x6461),
        DatasetId::Airtel1 => {
            let (topology, trace) = airtel_single_failures(
                airtel_default(),
                SdnIpConfig {
                    prefixes_per_router: scale.airtel_prefixes_per_router(),
                    seed: 0xA1,
                },
                scale.airtel_failure_cap(),
            );
            Dataset {
                id,
                topology,
                trace,
            }
        }
        DatasetId::Airtel2 => {
            let (topology, trace) = airtel_pair_failures(
                airtel_default(),
                SdnIpConfig {
                    prefixes_per_router: scale.airtel_prefixes_per_router(),
                    seed: 0xA2,
                },
                scale.airtel_pair_cap(),
            );
            Dataset {
                id,
                topology,
                trace,
            }
        }
        DatasetId::FourSwitch => {
            let (prefixes_per_router, rounds) = scale.four_switch_params();
            let (topology, trace) = four_switch_rounds(
                four_switch_with_borders(),
                prefixes_per_router,
                rounds,
                0x45,
            );
            Dataset {
                id,
                topology,
                trace,
            }
        }
        DatasetId::Churn => {
            let topology = crate::churn::churn_topology();
            let churn = crate::churn::flapping_churn(&topology, scale.churn_config());
            Dataset {
                id,
                topology,
                trace: churn.trace,
            }
        }
    }
}

/// Builds every dataset at the given scale, in Table 2 order.
pub fn build_all(scale: ScaleProfile) -> Vec<Dataset> {
    DatasetId::ALL.iter().map(|&id| build(id, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_datasets_have_expected_structure() {
        for id in [
            DatasetId::Berkeley,
            DatasetId::Airtel1,
            DatasetId::FourSwitch,
        ] {
            let ds = build(id, ScaleProfile::Tiny);
            assert!(ds.trace.len() > 100, "{id:?} too small: {}", ds.trace.len());
            assert!(ds.trace.len() < 60_000, "{id:?} too large for tiny scale");
            let row = ds.table2_row();
            assert_eq!(row.operations, ds.trace.len());
            assert!(row.nodes > 0 && row.links > 0);
        }
    }

    #[test]
    fn synthetic_traces_insert_then_remove_everything() {
        let ds = build(DatasetId::Berkeley, ScaleProfile::Tiny);
        assert_eq!(ds.trace.insert_count(), ds.trace.remove_count());
        assert!(ds.trace.final_data_plane().is_empty());
    }

    #[test]
    fn four_switch_is_insert_only() {
        let ds = build(DatasetId::FourSwitch, ScaleProfile::Tiny);
        assert_eq!(ds.trace.remove_count(), 0);
    }

    #[test]
    fn airtel_traces_contain_failure_churn() {
        let ds = build(DatasetId::Airtel1, ScaleProfile::Tiny);
        assert!(ds.trace.remove_count() > 0);
        let ds2 = build(DatasetId::Airtel2, ScaleProfile::Tiny);
        assert!(ds2.trace.remove_count() > 0);
    }

    #[test]
    fn churn_dataset_flaps_and_returns_to_baseline() {
        let ds = build(DatasetId::Churn, ScaleProfile::Tiny);
        assert!(ds.trace.remove_count() > 0);
        assert_eq!(
            ds.trace.insert_count() - ds.trace.remove_count(),
            ds.trace.final_data_plane().len()
        );
        // Not part of Table 2.
        assert!(!DatasetId::ALL.contains(&DatasetId::Churn));
        assert_eq!(DatasetId::Churn.name(), "Churn");
    }

    #[test]
    fn dataset_names_match_table2() {
        let names: Vec<&str> = DatasetId::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "Berkeley", "INET", "RF 1755", "RF 3257", "RF 6461", "Airtel 1", "Airtel 2",
                "4Switch"
            ]
        );
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build(DatasetId::FourSwitch, ScaleProfile::Tiny);
        let b = build(DatasetId::FourSwitch, ScaleProfile::Tiny);
        assert_eq!(a.trace, b.trace);
    }
}
