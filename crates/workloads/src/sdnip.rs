//! An SDN-IP / ONOS controller simulator.
//!
//! The paper's most realistic datasets come from running SDN-IP, an ONOS
//! application that lets an ONOS-controlled network interoperate with
//! external BGP autonomous systems (§4.2.2): border routers advertise IP
//! prefixes, SDN-IP installs longest-prefix-priority forwarding rules so
//! that packets destined to an external AS reach the correct border router,
//! and when links fail ONOS reroutes by withdrawing and reinstalling rules.
//!
//! The original setup (ONOS + Mininet + Open vSwitch + Quagga) is replaced
//! by an in-process simulator that produces exactly the artefact Delta-net
//! consumes: a stream of rule insertions and removals. The controller logic
//! mirrors SDN-IP's externally visible behaviour:
//!
//! * every advertised prefix is mapped to the switch its border router
//!   attaches to (the egress switch);
//! * every other switch gets a rule forwarding the prefix along the current
//!   shortest path towards the egress, with priority = prefix length;
//! * failing a link triggers recomputation: rules whose next hop changes are
//!   removed and reinstalled along the new shortest path;
//! * recovering the link triggers the symmetric reconfiguration.

use crate::bgp::{generate_prefixes, PrefixGenConfig};
use crate::topologies::GeneratedTopology;
use netmodel::ip::IpPrefix;
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, NodeId};
use netmodel::trace::{Op, Trace};
use std::collections::HashMap;

/// Configuration of the SDN-IP simulation.
#[derive(Clone, Copy, Debug)]
pub struct SdnIpConfig {
    /// Number of prefixes each border router advertises (100 in the Airtel
    /// experiments, 5000 in the 4-switch experiments).
    pub prefixes_per_router: usize,
    /// RNG seed for the advertised prefixes.
    pub seed: u64,
}

impl Default for SdnIpConfig {
    fn default() -> Self {
        SdnIpConfig {
            prefixes_per_router: 100,
            seed: 0x0905,
        }
    }
}

/// One BGP advertisement as seen by the controller: a prefix reachable via
/// the border router attached to `egress`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Advertisement {
    /// The advertised destination prefix.
    pub prefix: IpPrefix,
    /// The switch the advertising border router attaches to.
    pub egress: NodeId,
}

/// The simulated SDN-IP controller.
///
/// All data-plane changes it makes are appended to an internal [`Trace`]
/// which can be drained with [`SdnIpController::take_trace`] and replayed
/// against any checker.
#[derive(Clone, Debug)]
pub struct SdnIpController {
    topo: GeneratedTopology,
    advertisements: Vec<Advertisement>,
    /// Installed rules per advertisement index and switch.
    installed: HashMap<(usize, NodeId), Rule>,
    /// For each edge switch, its link towards the attached border router
    /// (if any): the egress rule of every advertisement uses it.
    border_link: HashMap<NodeId, LinkId>,
    failed_links: Vec<LinkId>,
    next_rule_id: u64,
    trace: Trace,
}

impl SdnIpController {
    /// Creates the controller: every edge switch of `topo` hosts one border
    /// router advertising `config.prefixes_per_router` prefixes drawn from a
    /// synthetic Route-Views-style population.
    ///
    /// As in BGP best-route selection, a prefix advertised by several border
    /// routers is installed only towards one of them (the first advertiser),
    /// so rule priorities (derived from prefix lengths) never conflict.
    pub fn new(topo: GeneratedTopology, config: SdnIpConfig) -> Self {
        let total = config.prefixes_per_router * topo.edge_nodes.len();
        let prefixes = generate_prefixes(PrefixGenConfig {
            count: total,
            overlap_percent: 35,
            seed: config.seed,
        });
        let mut seen: std::collections::HashSet<IpPrefix> = std::collections::HashSet::new();
        let advertisements = prefixes
            .into_iter()
            .enumerate()
            .filter(|(_, prefix)| seen.insert(*prefix))
            .map(|(i, prefix)| Advertisement {
                prefix,
                egress: topo.edge_nodes[i % topo.edge_nodes.len()],
            })
            .collect();
        Self::with_advertisements(topo, advertisements)
    }

    /// Creates the controller with an explicit advertisement list (used by
    /// the 4-switch dataset which repeats the experiment with fresh
    /// prefixes).
    pub fn with_advertisements(
        topo: GeneratedTopology,
        advertisements: Vec<Advertisement>,
    ) -> Self {
        // Each edge switch exits towards its attached border router: the
        // first neighbour that is not itself a switch.
        let switches: std::collections::HashSet<NodeId> = topo.edge_nodes.iter().copied().collect();
        let mut border_link = HashMap::new();
        for &s in &topo.edge_nodes {
            for &l in topo.topology.out_links(s) {
                let dst = topo.topology.link(l).dst;
                if !switches.contains(&dst) && !topo.topology.is_drop_node(dst) {
                    border_link.insert(s, l);
                    break;
                }
            }
        }
        SdnIpController {
            topo,
            advertisements,
            installed: HashMap::new(),
            border_link,
            failed_links: Vec::new(),
            next_rule_id: 0,
            trace: Trace::new(),
        }
    }

    /// The simulated advertisements.
    pub fn advertisements(&self) -> &[Advertisement] {
        &self.advertisements
    }

    /// The topology (switches and border routers).
    pub fn topology(&self) -> &GeneratedTopology {
        &self.topo
    }

    /// Number of rules currently installed in the data plane.
    pub fn installed_rule_count(&self) -> usize {
        self.installed.len()
    }

    /// Number of operations emitted so far.
    pub fn emitted_ops(&self) -> usize {
        self.trace.len()
    }

    /// Drains the accumulated operation trace.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Installs (or reconfigures) the data plane so that every advertisement
    /// is routed along the current shortest paths, given the currently
    /// failed links. Emits the necessary insert/remove operations.
    pub fn reconcile(&mut self) {
        // Shortest-path next hops per egress switch, avoiding failed links.
        let mut next_hop: HashMap<NodeId, Vec<Option<LinkId>>> = HashMap::new();
        let egresses: Vec<NodeId> = {
            let mut v: Vec<NodeId> = self.advertisements.iter().map(|a| a.egress).collect();
            v.sort();
            v.dedup();
            v
        };
        for egress in egresses {
            next_hop.insert(
                egress,
                self.topo
                    .topology
                    .shortest_path_next_hop_avoiding(egress, &self.failed_links),
            );
        }
        let switches: Vec<NodeId> = self.topo.edge_nodes.clone();

        for (adv_idx, adv) in self.advertisements.clone().into_iter().enumerate() {
            let tree = &next_hop[&adv.egress];
            for &switch in &switches {
                // At the egress switch the packet leaves the SDN network
                // towards the advertising border router; elsewhere it is
                // forwarded one hop along the shortest path to the egress.
                let desired_link = if switch == adv.egress {
                    self.border_link.get(&switch).copied()
                } else {
                    tree[switch.index()]
                };
                let key = (adv_idx, switch);
                let current = self.installed.get(&key).copied();
                match (current, desired_link) {
                    (Some(rule), Some(link)) if rule.link == link => {} // unchanged
                    (Some(rule), Some(link)) => {
                        // Reroute: remove the old rule, install the new one.
                        self.trace.push_remove(rule.id);
                        let new_rule = self.make_rule(adv.prefix, switch, link);
                        self.trace.push_insert(new_rule);
                        self.installed.insert(key, new_rule);
                    }
                    (Some(rule), None) => {
                        // Destination became unreachable: withdraw.
                        self.trace.push_remove(rule.id);
                        self.installed.remove(&key);
                    }
                    (None, Some(link)) => {
                        let new_rule = self.make_rule(adv.prefix, switch, link);
                        self.trace.push_insert(new_rule);
                        self.installed.insert(key, new_rule);
                    }
                    (None, None) => {}
                }
            }
        }
    }

    fn make_rule(&mut self, prefix: IpPrefix, switch: NodeId, link: LinkId) -> Rule {
        // SDN-IP sets priorities by longest prefix match.
        let priority = u32::from(prefix.len()) + 1;
        let rule = Rule::forward(RuleId(self.next_rule_id), prefix, priority, switch, link);
        self.next_rule_id += 1;
        rule
    }

    /// Fails the bidirectional link between two switches and reconfigures
    /// the data plane (the "Event Injector" of Figure 7).
    pub fn fail_link_between(&mut self, a: NodeId, b: NodeId) {
        for (x, y) in [(a, b), (b, a)] {
            if let Some(l) = self.topo.topology.link_between(x, y) {
                if !self.failed_links.contains(&l) {
                    self.failed_links.push(l);
                }
            }
        }
        self.reconcile();
    }

    /// Recovers the bidirectional link between two switches and
    /// reconfigures the data plane.
    pub fn recover_link_between(&mut self, a: NodeId, b: NodeId) {
        for (x, y) in [(a, b), (b, a)] {
            if let Some(l) = self.topo.topology.link_between(x, y) {
                self.failed_links.retain(|&f| f != l);
            }
        }
        self.reconcile();
    }

    /// The currently failed links.
    pub fn failed_links(&self) -> &[LinkId] {
        &self.failed_links
    }

    /// All bidirectional inter-switch link pairs `(a, b)` with `a < b`
    /// (candidates for failure injection; switch-to-border-router links are
    /// excluded because failing them just disconnects one AS).
    pub fn inter_switch_links(&self) -> Vec<(NodeId, NodeId)> {
        let switches: std::collections::HashSet<NodeId> =
            self.topo.edge_nodes.iter().copied().collect();
        let mut pairs: Vec<(NodeId, NodeId)> = self
            .topo
            .topology
            .links()
            .iter()
            .filter(|l| switches.contains(&l.src) && switches.contains(&l.dst) && l.src < l.dst)
            .map(|l| (l.src, l.dst))
            .collect();
        pairs.sort();
        pairs.dedup();
        pairs
    }
}

/// Builds the **Airtel 1** style trace: initial installation followed by
/// failing every inter-switch link one at a time, recovering each before
/// failing the next (§4.2.2). `max_failures` caps the number of injected
/// failures so scaled-down datasets stay small.
pub fn airtel_single_failures(
    topo: GeneratedTopology,
    config: SdnIpConfig,
    max_failures: Option<usize>,
) -> (GeneratedTopology, Trace) {
    let mut controller = SdnIpController::new(topo.clone(), config);
    controller.reconcile();
    let pairs = controller.inter_switch_links();
    let limit = max_failures.unwrap_or(pairs.len()).min(pairs.len());
    for &(a, b) in pairs.iter().take(limit) {
        controller.fail_link_between(a, b);
        controller.recover_link_between(a, b);
    }
    (topo, controller.take_trace())
}

/// Builds the **Airtel 2** style trace: all 2-pair link failures (fail the
/// first link, then the second, then recover both), capped at
/// `max_pairs` pairs.
pub fn airtel_pair_failures(
    topo: GeneratedTopology,
    config: SdnIpConfig,
    max_pairs: Option<usize>,
) -> (GeneratedTopology, Trace) {
    let mut controller = SdnIpController::new(topo.clone(), config);
    controller.reconcile();
    let links = controller.inter_switch_links();
    let mut pairs: Vec<((NodeId, NodeId), (NodeId, NodeId))> = Vec::new();
    for i in 0..links.len() {
        for j in (i + 1)..links.len() {
            pairs.push((links[i], links[j]));
        }
    }
    let limit = max_pairs.unwrap_or(pairs.len()).min(pairs.len());
    for &((a1, b1), (a2, b2)) in pairs.iter().take(limit) {
        controller.fail_link_between(a1, b1);
        controller.fail_link_between(a2, b2);
        controller.recover_link_between(a1, b1);
        controller.recover_link_between(a2, b2);
    }
    (topo, controller.take_trace())
}

/// Builds the **4Switch** style trace: `rounds` repetitions of advertising a
/// fresh batch of prefixes on a small ring, with no failures — all
/// operations are insertions (§4.2.2).
pub fn four_switch_rounds(
    topo: GeneratedTopology,
    prefixes_per_router: usize,
    rounds: usize,
    seed: u64,
) -> (GeneratedTopology, Trace) {
    let mut combined = Trace::new();
    let mut id_offset = 0u64;
    for round in 0..rounds {
        let mut controller = SdnIpController::new(
            topo.clone(),
            SdnIpConfig {
                prefixes_per_router,
                seed: seed.wrapping_add(round as u64),
            },
        );
        controller.reconcile();
        let trace = controller.take_trace();
        // Re-number rule ids so rounds do not collide.
        for op in trace.ops() {
            match op {
                Op::Insert(rule) => {
                    let mut r = *rule;
                    r.id = RuleId(r.id.0 + id_offset);
                    combined.push_insert(r);
                }
                Op::Remove(id) => combined.push_remove(RuleId(id.0 + id_offset)),
            }
        }
        id_offset += 10_000_000;
    }
    (topo, combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::airtel;
    use netmodel::fib::NetworkFib;
    use netmodel::packet::Packet;

    fn small_airtel() -> GeneratedTopology {
        airtel(6, 42)
    }

    #[test]
    fn initial_reconcile_installs_full_routing() {
        let topo = small_airtel();
        let mut c = SdnIpController::new(
            topo,
            SdnIpConfig {
                prefixes_per_router: 5,
                seed: 1,
            },
        );
        c.reconcile();
        // 6 switches × 5 prefixes = 30 advertisements (minus duplicates, as
        // in BGP best-route selection); each installed on the 5 non-egress
        // switches plus one egress rule towards the border router.
        let advs = c.advertisements().len();
        assert!(advs > 0 && advs <= 30);
        assert_eq!(c.installed_rule_count(), advs * 6);
        let trace = c.take_trace();
        assert_eq!(trace.len(), advs * 6);
        assert_eq!(trace.remove_count(), 0);
    }

    #[test]
    fn reconcile_is_idempotent() {
        let topo = small_airtel();
        let mut c = SdnIpController::new(
            topo,
            SdnIpConfig {
                prefixes_per_router: 3,
                seed: 2,
            },
        );
        c.reconcile();
        let first = c.emitted_ops();
        c.reconcile();
        assert_eq!(c.emitted_ops(), first, "second reconcile must be a no-op");
    }

    #[test]
    fn link_failure_generates_remove_insert_churn_and_recovery_restores() {
        let topo = small_airtel();
        let mut c = SdnIpController::new(
            topo,
            SdnIpConfig {
                prefixes_per_router: 4,
                seed: 3,
            },
        );
        c.reconcile();
        let _ = c.take_trace();
        let rules_before = c.installed_rule_count();
        let pairs = c.inter_switch_links();
        let (a, b) = pairs[0];
        c.fail_link_between(a, b);
        let churn = c.take_trace();
        assert!(!churn.is_empty(), "failing a used link must cause churn");
        assert!(churn.remove_count() > 0);
        assert_eq!(c.failed_links().len(), 2); // both directions
        c.recover_link_between(a, b);
        assert!(c.failed_links().is_empty());
        assert_eq!(c.installed_rule_count(), rules_before);
    }

    #[test]
    fn data_plane_remains_consistent_after_failure() {
        // Replay the whole churn into a reference FIB and verify traffic for
        // a sample advertisement still reaches its egress with the link down.
        let topo = small_airtel();
        let mut c = SdnIpController::new(
            topo.clone(),
            SdnIpConfig {
                prefixes_per_router: 4,
                seed: 4,
            },
        );
        c.reconcile();
        let pairs = c.inter_switch_links();
        c.fail_link_between(pairs[0].0, pairs[0].1);
        let trace = c.take_trace();

        let mut fib = NetworkFib::new(topo.topology.clone());
        for op in trace.ops() {
            match op {
                Op::Insert(r) => fib.insert(*r),
                Op::Remove(id) => {
                    fib.remove(*id);
                }
            }
        }
        let adv = c.advertisements()[0];
        let addr = adv.prefix.interval().lo();
        for start in topo.edge_nodes.iter().copied() {
            if start == adv.egress {
                continue;
            }
            let t = fib.trace(start, Packet::to(addr));
            assert!(
                t.path.contains(&adv.egress),
                "advertisement no longer reachable from {start}"
            );
            // The failed link must not be used.
            let failed = topo.topology.link_between(pairs[0].0, pairs[0].1).unwrap();
            assert!(!t.links.contains(&failed));
        }
    }

    #[test]
    fn airtel_single_failure_dataset_shape() {
        let (_topo, trace) = airtel_single_failures(
            small_airtel(),
            SdnIpConfig {
                prefixes_per_router: 3,
                seed: 5,
            },
            Some(3),
        );
        assert!(!trace.is_empty());
        // The initial installation is all inserts; failures add removals.
        assert!(trace.remove_count() > 0);
        assert!(trace.insert_count() > trace.remove_count());
    }

    #[test]
    fn airtel_pair_failure_dataset_is_larger() {
        let cfg = SdnIpConfig {
            prefixes_per_router: 3,
            seed: 6,
        };
        let (_t1, single) = airtel_single_failures(small_airtel(), cfg, Some(4));
        let (_t2, pairs) = airtel_pair_failures(small_airtel(), cfg, Some(6));
        assert!(pairs.len() >= single.len());
    }

    #[test]
    fn four_switch_dataset_is_insert_only() {
        let (_topo, trace) =
            four_switch_rounds(crate::topologies::four_switch_with_borders(), 10, 3, 77);
        assert!(!trace.is_empty());
        assert_eq!(trace.remove_count(), 0);
        // Every advertisement contributes exactly 4 rules (3 non-egress
        // switches + 1 egress rule towards the border router).
        assert_eq!(trace.insert_count() % 4, 0);
        assert!(trace.insert_count() <= 3 * 4 * 10 * 4);
        // Rule ids are unique across rounds.
        let mut ids: Vec<u64> = trace.ops().iter().map(|o| o.rule_id().0).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
