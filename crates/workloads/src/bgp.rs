//! Synthetic Route-Views-style BGP prefix generation.
//!
//! The paper's synthetic datasets draw IP prefixes "from over half a million
//! real-world BGP updates collected by the Route Views project" (§4.2.1).
//! Those dumps are not redistributable, so this module generates prefix
//! populations with the statistical properties that matter for Delta-net:
//!
//! * a realistic prefix-length distribution (dominated by /24s, with
//!   substantial /16–/23 mass and a tail of short prefixes), and
//! * deliberate overlap: more-specific prefixes are generated *inside*
//!   previously generated less-specific ones, because the overlap structure
//!   is what drives atom counts and equivalence-class counts.
//!
//! Generation is fully deterministic given a seed.

use netmodel::ip::IpPrefix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic prefix generator.
#[derive(Clone, Copy, Debug)]
pub struct PrefixGenConfig {
    /// Number of prefixes to generate.
    pub count: usize,
    /// Probability (in percent) that a prefix is generated as a
    /// more-specific of an already generated prefix.
    pub overlap_percent: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PrefixGenConfig {
    fn default() -> Self {
        PrefixGenConfig {
            count: 1000,
            overlap_percent: 35,
            seed: 0x5EED,
        }
    }
}

/// Draws a prefix length from the (approximate) global routing table
/// distribution: ~55% /24, ~30% spread over /17–/23, ~10% /9–/16, rest /25+
/// and short prefixes.
fn sample_length(rng: &mut StdRng) -> u8 {
    let roll = rng.gen_range(0u32..100);
    match roll {
        0..=54 => 24,
        55..=84 => rng.gen_range(17..=23),
        85..=94 => rng.gen_range(9..=16),
        95..=97 => rng.gen_range(25..=28),
        _ => 8,
    }
}

/// Generates a deterministic population of IPv4 prefixes.
pub fn generate_prefixes(config: PrefixGenConfig) -> Vec<IpPrefix> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut prefixes: Vec<IpPrefix> = Vec::with_capacity(config.count);
    while prefixes.len() < config.count {
        let make_overlap = !prefixes.is_empty() && rng.gen_range(0u8..100) < config.overlap_percent;
        let prefix = if make_overlap {
            // A more-specific inside an existing prefix.
            let parent = prefixes[rng.gen_range(0..prefixes.len())];
            let extra = rng.gen_range(1..=8u8).min(32 - parent.len());
            if extra == 0 {
                continue;
            }
            let new_len = parent.len() + extra;
            let host_bits = 32 - u32::from(new_len);
            let offset_max = 1u128 << (u32::from(extra));
            let offset = rng.gen_range(0..offset_max);
            IpPrefix::new(parent.value() + (offset << host_bits), new_len, 32)
        } else {
            let len = sample_length(&mut rng);
            // Keep addresses in the unicast range 1.0.0.0 – 223.255.255.255.
            let addr: u32 = rng.gen_range(0x0100_0000u32..0xE000_0000u32);
            IpPrefix::ipv4(addr, len)
        };
        prefixes.push(prefix);
    }
    prefixes
}

/// Statistics about a prefix population, used by tests and the dataset
/// summary tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Number of prefixes.
    pub count: usize,
    /// Number of prefixes fully contained in some other prefix.
    pub nested: usize,
    /// Number of distinct prefix lengths present.
    pub distinct_lengths: usize,
}

/// Computes [`PrefixStats`] for a prefix population.
pub fn prefix_stats(prefixes: &[IpPrefix]) -> PrefixStats {
    let mut nested = 0usize;
    for (i, p) in prefixes.iter().enumerate() {
        if prefixes
            .iter()
            .enumerate()
            .any(|(j, q)| i != j && q.len() < p.len() && q.covers(p))
        {
            nested += 1;
        }
    }
    let mut lengths: Vec<u8> = prefixes.iter().map(|p| p.len()).collect();
    lengths.sort_unstable();
    lengths.dedup();
    PrefixStats {
        count: prefixes.len(),
        nested,
        distinct_lengths: lengths.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let prefixes = generate_prefixes(PrefixGenConfig {
            count: 500,
            ..Default::default()
        });
        assert_eq!(prefixes.len(), 500);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate_prefixes(PrefixGenConfig::default());
        let b = generate_prefixes(PrefixGenConfig::default());
        assert_eq!(a, b);
        let c = generate_prefixes(PrefixGenConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn length_distribution_is_plausible() {
        let prefixes = generate_prefixes(PrefixGenConfig {
            count: 5000,
            overlap_percent: 0,
            seed: 7,
        });
        let slash24 = prefixes.iter().filter(|p| p.len() == 24).count();
        let short = prefixes.iter().filter(|p| p.len() <= 16).count();
        // Roughly 55% /24s and a noticeable share of short prefixes.
        assert!(slash24 * 100 / prefixes.len() > 40, "{slash24}");
        assert!(short * 100 / prefixes.len() > 5, "{short}");
        let stats = prefix_stats(&prefixes[..500]);
        assert!(stats.distinct_lengths > 5);
    }

    #[test]
    fn overlap_knob_produces_nested_prefixes() {
        let none = generate_prefixes(PrefixGenConfig {
            count: 400,
            overlap_percent: 0,
            seed: 11,
        });
        let heavy = generate_prefixes(PrefixGenConfig {
            count: 400,
            overlap_percent: 80,
            seed: 11,
        });
        let s_none = prefix_stats(&none);
        let s_heavy = prefix_stats(&heavy);
        assert!(
            s_heavy.nested > s_none.nested,
            "nested {} vs {}",
            s_heavy.nested,
            s_none.nested
        );
        // With 80% overlap the majority of prefixes should be nested.
        assert!(s_heavy.nested * 100 / s_heavy.count > 40);
    }

    #[test]
    fn prefixes_stay_in_unicast_space() {
        let prefixes = generate_prefixes(PrefixGenConfig {
            count: 2000,
            overlap_percent: 50,
            seed: 3,
        });
        for p in prefixes {
            assert!(p.len() <= 32);
            assert!(p.interval().hi() <= 1u128 << 32);
        }
    }
}
