//! Replayable operation traces.
//!
//! The paper's datasets (§4.2) are organized "as text files in which each
//! line denotes an operation: an insertion or removal of a rule", so that
//! every experiment can be replayed deterministically. This module provides
//! the same abstraction: an [`Op`] is one insertion or removal, a [`Trace`]
//! is an ordered sequence of them, and the text format round-trips through
//! [`Trace::to_text`] / [`Trace::parse`].
//!
//! Text format, one operation per line (whitespace separated):
//!
//! ```text
//! I <rule-id> <src-node> <dst-node|drop> <prefix> <priority> [<lo>:<hi>...]
//! R <rule-id>
//! # comments and blank lines are ignored
//! ```
//!
//! Node references are numeric node ids into the accompanying topology; the
//! destination `drop` denotes the source node's drop link. A single-field
//! rule serializes to exactly the five historical fields, byte-identical to
//! the pre-multi-field format; a rule constraining secondary header fields
//! appends one `<lo>:<hi>` half-closed interval token per constrained field,
//! in field order.

use crate::header::SecondaryMatch;
use crate::interval::Interval;
use crate::ip::IpPrefix;
use crate::rule::{Rule, RuleId};
use crate::topology::{NodeId, Topology};
use std::collections::HashMap;
use std::fmt;

/// A single data-plane update operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Insert the given rule into its source switch's forwarding table.
    Insert(Rule),
    /// Remove the rule with the given id.
    Remove(RuleId),
}

impl Op {
    /// The id of the rule this operation concerns.
    pub fn rule_id(&self) -> RuleId {
        match self {
            Op::Insert(r) => r.id,
            Op::Remove(id) => *id,
        }
    }

    /// Whether this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, Op::Insert(_))
    }
}

/// Errors produced when parsing a textual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

/// An ordered, replayable sequence of data-plane operations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace from the given operations.
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Trace { ops }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends an insertion of `rule`.
    pub fn push_insert(&mut self, rule: Rule) {
        self.ops.push(Op::Insert(rule));
    }

    /// Appends a removal of the rule with id `id`.
    pub fn push_remove(&mut self, id: RuleId) {
        self.ops.push(Op::Remove(id));
    }

    /// The operations in replay order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of insert operations.
    pub fn insert_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_insert()).count()
    }

    /// Number of remove operations.
    pub fn remove_count(&self) -> usize {
        self.len() - self.insert_count()
    }

    /// Appends all operations of `other`.
    pub fn extend(&mut self, other: Trace) {
        self.ops.extend(other.ops);
    }

    /// The maximum number of rules simultaneously installed at any point
    /// while replaying the trace from an empty data plane.
    pub fn peak_rule_count(&self) -> usize {
        let mut live = 0usize;
        let mut peak = 0usize;
        for op in &self.ops {
            match op {
                Op::Insert(_) => {
                    live += 1;
                    peak = peak.max(live);
                }
                Op::Remove(_) => live = live.saturating_sub(1),
            }
        }
        peak
    }

    /// The rules that remain installed after replaying the whole trace
    /// (i.e. the final consistent data plane snapshot, as used for the
    /// paper's "what if" experiments, §4.3.2).
    pub fn final_data_plane(&self) -> Vec<Rule> {
        let mut live: HashMap<RuleId, Rule> = HashMap::new();
        for op in &self.ops {
            match op {
                Op::Insert(r) => {
                    live.insert(r.id, *r);
                }
                Op::Remove(id) => {
                    live.remove(id);
                }
            }
        }
        let mut rules: Vec<Rule> = live.into_values().collect();
        rules.sort_by_key(|r| r.id);
        rules
    }

    /// Serializes the trace to the line-oriented text format.
    ///
    /// `topology` is needed to resolve each rule's link back to a destination
    /// node (or `drop`).
    pub fn to_text(&self, topology: &Topology) -> String {
        let mut out = String::new();
        out.push_str("# delta-net trace: I <id> <src> <dst|drop> <prefix> <priority> | R <id>\n");
        for op in &self.ops {
            match op {
                Op::Insert(r) => {
                    let dst = if topology.is_drop_link(r.link) {
                        "drop".to_string()
                    } else {
                        topology.link(r.link).dst.0.to_string()
                    };
                    out.push_str(&format!(
                        "I {} {} {} {} {}",
                        r.id.0, r.source.0, dst, r.prefix, r.priority
                    ));
                    for iv in r.sec.intervals() {
                        out.push_str(&format!(" {}:{}", iv.lo(), iv.hi()));
                    }
                    out.push('\n');
                }
                Op::Remove(id) => out.push_str(&format!("R {}\n", id.0)),
            }
        }
        out
    }

    /// Parses the line-oriented text format, resolving node pairs to links in
    /// (and, for `drop`, mutating) the given topology.
    pub fn parse(text: &str, topology: &mut Topology) -> Result<Self, TraceParseError> {
        let mut trace = Trace::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap();
            let err = |message: String| TraceParseError {
                line: line_no,
                message,
            };
            match kind {
                "I" => {
                    let fields: Vec<&str> = parts.collect();
                    if fields.len() < 5 {
                        return Err(err(format!(
                            "expected `I <id> <src> <dst|drop> <prefix> <priority>`, got {} fields",
                            fields.len() + 1
                        )));
                    }
                    let id: u64 = fields[0]
                        .parse()
                        .map_err(|_| err(format!("bad rule id `{}`", fields[0])))?;
                    let src: u32 = fields[1]
                        .parse()
                        .map_err(|_| err(format!("bad src node `{}`", fields[1])))?;
                    let src = NodeId(src);
                    if src.index() >= topology.node_count() {
                        return Err(err(format!("unknown src node {src}")));
                    }
                    let prefix: IpPrefix = fields[3]
                        .parse()
                        .map_err(|e| err(format!("bad prefix `{}`: {e}", fields[3])))?;
                    let priority: u32 = fields[4]
                        .parse()
                        .map_err(|_| err(format!("bad priority `{}`", fields[4])))?;
                    let mut sec_ivs = Vec::new();
                    for tok in &fields[5..] {
                        let (lo, hi) = tok
                            .split_once(':')
                            .ok_or_else(|| err(format!("bad secondary interval `{tok}`")))?;
                        let lo: u128 = lo
                            .parse()
                            .map_err(|_| err(format!("bad secondary interval `{tok}`")))?;
                        let hi: u128 = hi
                            .parse()
                            .map_err(|_| err(format!("bad secondary interval `{tok}`")))?;
                        if lo >= hi {
                            return Err(err(format!("empty secondary interval `{tok}`")));
                        }
                        if hi > 1 << crate::header::MAX_SECONDARY_WIDTH {
                            return Err(err(format!(
                                "secondary bound in `{tok}` exceeds the {}-bit field range",
                                crate::header::MAX_SECONDARY_WIDTH
                            )));
                        }
                        sec_ivs.push(Interval::new(lo, hi));
                    }
                    if sec_ivs.len() > crate::header::MAX_SECONDARY_FIELDS {
                        return Err(err(format!(
                            "{} secondary intervals exceed the supported {}",
                            sec_ivs.len(),
                            crate::header::MAX_SECONDARY_FIELDS
                        )));
                    }
                    let rule = if fields[2] == "drop" {
                        let dl = topology.drop_link(src);
                        Rule::drop(RuleId(id), prefix, priority, src, dl)
                    } else {
                        let dst: u32 = fields[2]
                            .parse()
                            .map_err(|_| err(format!("bad dst node `{}`", fields[2])))?;
                        let dst = NodeId(dst);
                        let link = topology.link_between(src, dst).ok_or_else(|| {
                            err(format!("no link between {src} and {dst} in topology"))
                        })?;
                        Rule::forward(RuleId(id), prefix, priority, src, link)
                    };
                    trace.push_insert(rule.with_secondary(SecondaryMatch::new(&sec_ivs)));
                }
                "R" => {
                    let id_str = parts
                        .next()
                        .ok_or_else(|| err("missing rule id after R".to_string()))?;
                    let id: u64 = id_str
                        .parse()
                        .map_err(|_| err(format!("bad rule id `{id_str}`")))?;
                    trace.push_remove(RuleId(id));
                }
                other => {
                    return Err(err(format!("unknown operation kind `{other}`")));
                }
            }
        }
        Ok(trace)
    }

    /// Splits the trace into its insert-phase prefix and the rest. Useful for
    /// experiments that first build a data plane and then exercise updates.
    pub fn split_at(&self, idx: usize) -> (Trace, Trace) {
        let idx = idx.min(self.ops.len());
        (
            Trace::from_ops(self.ops[..idx].to_vec()),
            Trace::from_ops(self.ops[idx..].to_vec()),
        )
    }
}

impl IntoIterator for Trace {
    type Item = Op;
    type IntoIter = std::vec::IntoIter<Op>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let n = t.add_nodes("s", 3);
        t.add_bidi_link(n[0], n[1]);
        t.add_bidi_link(n[1], n[2]);
        (t, n)
    }

    fn sample_trace(t: &mut Topology, n: &[NodeId]) -> Trace {
        let l01 = t.link_between(n[0], n[1]).unwrap();
        let l12 = t.link_between(n[1], n[2]).unwrap();
        let dl = t.drop_link(n[0]);
        let mut trace = Trace::new();
        trace.push_insert(Rule::forward(
            RuleId(1),
            "10.0.0.0/8".parse().unwrap(),
            10,
            n[0],
            l01,
        ));
        trace.push_insert(Rule::forward(
            RuleId(2),
            "10.0.0.0/16".parse().unwrap(),
            20,
            n[1],
            l12,
        ));
        trace.push_insert(Rule::drop(
            RuleId(3),
            "10.0.1.0/24".parse().unwrap(),
            30,
            n[0],
            dl,
        ));
        trace.push_remove(RuleId(2));
        trace
    }

    #[test]
    fn counters_and_final_data_plane() {
        let (mut t, n) = topo();
        let trace = sample_trace(&mut t, &n);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.insert_count(), 3);
        assert_eq!(trace.remove_count(), 1);
        assert_eq!(trace.peak_rule_count(), 3);
        let final_dp = trace.final_data_plane();
        assert_eq!(final_dp.len(), 2);
        assert_eq!(final_dp[0].id, RuleId(1));
        assert_eq!(final_dp[1].id, RuleId(3));
    }

    #[test]
    fn text_roundtrip() {
        let (mut t, n) = topo();
        let trace = sample_trace(&mut t, &n);
        let text = trace.to_text(&t);
        let mut t2 = {
            // Rebuild the same topology without the drop link: parse creates it.
            let mut t2 = Topology::new();
            let m = t2.add_nodes("s", 3);
            t2.add_bidi_link(m[0], m[1]);
            t2.add_bidi_link(m[1], m[2]);
            t2
        };
        let parsed = Trace::parse(&text, &mut t2).unwrap();
        assert_eq!(parsed.len(), trace.len());
        for (a, b) in parsed.ops().iter().zip(trace.ops()) {
            match (a, b) {
                (Op::Insert(x), Op::Insert(y)) => {
                    assert_eq!(x.id, y.id);
                    assert_eq!(x.prefix, y.prefix);
                    assert_eq!(x.priority, y.priority);
                    assert_eq!(x.source, y.source);
                    assert_eq!(x.action, y.action);
                }
                (Op::Remove(x), Op::Remove(y)) => assert_eq!(x, y),
                _ => panic!("op kind mismatch"),
            }
        }
    }

    #[test]
    fn multifield_text_roundtrip() {
        let (mut t, n) = topo();
        let l01 = t.link_between(n[0], n[1]).unwrap();
        let mut trace = Trace::new();
        trace.push_insert(
            Rule::forward(RuleId(1), "10.0.0.0/8".parse().unwrap(), 10, n[0], l01).with_secondary(
                SecondaryMatch::new(&[Interval::new(100, 200), Interval::new(0, 80)]),
            ),
        );
        trace.push_insert(Rule::forward(
            RuleId(2),
            "10.0.0.0/16".parse().unwrap(),
            20,
            n[0],
            l01,
        ));
        let text = trace.to_text(&t);
        assert!(text.contains("100:200 0:80"));
        // The single-field line keeps exactly the historical five fields.
        let plain = text.lines().find(|l| l.starts_with("I 2")).unwrap();
        assert_eq!(plain.split_whitespace().count(), 6);
        let parsed = Trace::parse(&text, &mut t).unwrap();
        match &parsed.ops()[0] {
            Op::Insert(r) => {
                assert_eq!(
                    &r.sec.intervals()[..],
                    &[Interval::new(100, 200), Interval::new(0, 80)]
                );
            }
            _ => panic!("expected insert"),
        }
        match &parsed.ops()[1] {
            Op::Insert(r) => assert!(r.sec.is_empty()),
            _ => panic!("expected insert"),
        }
        // Malformed secondary tokens are clean parse errors.
        let err = Trace::parse("I 1 0 1 10.0.0.0/8 5 nonsense\n", &mut t).unwrap_err();
        assert!(err.message.contains("bad secondary interval"));
        let err = Trace::parse("I 1 0 1 10.0.0.0/8 5 9:9\n", &mut t).unwrap_err();
        assert!(err.message.contains("empty secondary interval"));
        let err = Trace::parse("I 1 0 1 10.0.0.0/8 5 0:1 0:1 0:1\n", &mut t).unwrap_err();
        assert!(err.message.contains("exceed"));
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let (mut t, _n) = topo();
        let text = "# a comment\n\nR 7\n  \nR 8\n";
        let trace = Trace::parse(text, &mut t).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.ops()[0], Op::Remove(RuleId(7)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let (mut t, _n) = topo();
        let err = Trace::parse("R 1\nX 2\n", &mut t).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown operation kind"));

        let err = Trace::parse("I 1 0 9 10.0.0.0/8 5\n", &mut t).unwrap_err();
        assert!(err.message.contains("no link between"));

        let err = Trace::parse("I 1 99 0 10.0.0.0/8 5\n", &mut t).unwrap_err();
        assert!(err.message.contains("unknown src node"));

        let err = Trace::parse("I 1 0 1 nonsense 5\n", &mut t).unwrap_err();
        assert!(err.message.contains("bad prefix"));

        let err = Trace::parse("I 1 0 1 10.0.0.0/8\n", &mut t).unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn split_at_partitions_ops() {
        let (mut t, n) = topo();
        let trace = sample_trace(&mut t, &n);
        let (a, b) = trace.split_at(3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 1);
        assert!(a.ops().iter().all(|o| o.is_insert()));
        let (c, d) = trace.split_at(100);
        assert_eq!(c.len(), 4);
        assert!(d.is_empty());
    }

    #[test]
    fn op_accessors() {
        let (mut t, n) = topo();
        let trace = sample_trace(&mut t, &n);
        assert_eq!(trace.ops()[0].rule_id(), RuleId(1));
        assert!(trace.ops()[0].is_insert());
        assert_eq!(trace.ops()[3].rule_id(), RuleId(2));
        assert!(!trace.ops()[3].is_insert());
    }

    #[test]
    fn iteration() {
        let (mut t, n) = topo();
        let trace = sample_trace(&mut t, &n);
        assert_eq!((&trace).into_iter().count(), 4);
        assert_eq!(trace.into_iter().count(), 4);
    }
}
