//! CIDR prefixes and their conversion to half-closed intervals.
//!
//! The paper's rules match on destination IP prefixes (IPv4 in the
//! evaluation, with the remark that the interval representation generalizes
//! to IPv6). [`IpPrefix`] is width-generic: a prefix is a `value/len` pair
//! over a `width`-bit field, so the same type covers IPv4 (`width = 32`),
//! IPv6-sized fields, or the small toy fields used in the paper's worked
//! examples (e.g. 4-bit addresses in Appendix A).

use crate::interval::{Bound, Interval};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Errors produced when parsing a textual CIDR prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// The string did not contain exactly one `/` separator.
    MissingSlash,
    /// The address part was not a valid dotted quad.
    BadAddress(String),
    /// The prefix length was not a number or exceeded the field width.
    BadLength(String),
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::MissingSlash => write!(f, "missing '/' in CIDR prefix"),
            PrefixParseError::BadAddress(s) => write!(f, "invalid address `{s}`"),
            PrefixParseError::BadLength(s) => write!(f, "invalid prefix length `{s}`"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

/// A CIDR-style prefix over a `width`-bit packet-header field.
///
/// The canonical invariant is that all bits below `width - len` are zero in
/// `value` (i.e. the prefix is aligned); [`IpPrefix::new`] enforces this by
/// masking. IPv4 prefixes use `width = 32`.
///
/// # Examples
///
/// ```
/// use netmodel::ip::IpPrefix;
/// use netmodel::interval::Interval;
///
/// let p: IpPrefix = "0.0.0.10/31".parse().unwrap();
/// assert_eq!(p.interval(), Interval::new(10, 12));
/// let q = IpPrefix::ipv4(0, 28); // 0.0.0.0/28
/// assert_eq!(q.interval(), Interval::new(0, 16));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IpPrefix {
    /// The (aligned) prefix value, right-aligned in the low `width` bits.
    value: Bound,
    /// Number of significant leading bits.
    len: u8,
    /// Total field width in bits (32 for IPv4).
    width: u8,
}

impl IpPrefix {
    /// Creates a prefix over a `width`-bit field, masking away any bits of
    /// `value` below the prefix length so the stored value is aligned.
    ///
    /// # Panics
    ///
    /// Panics if `len > width` or `width` is 0 or greater than 127.
    pub fn new(value: Bound, len: u8, width: u8) -> Self {
        assert!(width > 0 && width <= 127, "unsupported field width {width}");
        assert!(len <= width, "prefix length {len} exceeds width {width}");
        let host_bits = u32::from(width - len);
        let mask: Bound = if host_bits == 0 {
            !0
        } else {
            !((1u128 << host_bits) - 1)
        };
        let field_mask: Bound = (1u128 << width) - 1;
        IpPrefix {
            value: value & mask & field_mask,
            len,
            width,
        }
    }

    /// Creates an IPv4 prefix (`width = 32`) from a 32-bit address value.
    pub fn ipv4(addr: u32, len: u8) -> Self {
        IpPrefix::new(Bound::from(addr), len, 32)
    }

    /// The aligned prefix value.
    #[inline]
    pub fn value(&self) -> Bound {
        self.value
    }

    /// The prefix length in bits.
    ///
    /// A prefix always matches at least one address, so there is no
    /// corresponding `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` when the prefix matches the whole field (`len == 0`).
    #[inline]
    pub fn is_default_route(&self) -> bool {
        self.len == 0
    }

    /// The field width in bits.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The half-closed interval `[value : value + 2^(width-len))` of field
    /// values matched by this prefix (paper §3.1).
    #[inline]
    pub fn interval(&self) -> Interval {
        let span = 1u128 << (self.width - self.len);
        Interval::new(self.value, self.value + span)
    }

    /// Whether this prefix matches the given field value.
    #[inline]
    pub fn matches(&self, value: Bound) -> bool {
        self.interval().contains(value)
    }

    /// Whether `other` is a (non-strict) sub-prefix of `self`.
    pub fn covers(&self, other: &IpPrefix) -> bool {
        self.width == other.width && self.interval().contains_interval(&other.interval())
    }

    /// The number of addresses matched by this prefix.
    pub fn address_count(&self) -> Bound {
        1u128 << (self.width - self.len)
    }

    /// Formats an IPv4 prefix as dotted-quad CIDR; other widths as
    /// `value/len@width`.
    fn format(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 32 {
            let v = self.value as u32;
            write!(
                f,
                "{}.{}.{}.{}/{}",
                (v >> 24) & 0xff,
                (v >> 16) & 0xff,
                (v >> 8) & 0xff,
                v & 0xff,
                self.len
            )
        } else {
            write!(f, "{}/{}@{}", self.value, self.len, self.width)
        }
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.format(f)
    }
}

impl fmt::Debug for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.format(f)
    }
}

impl FromStr for IpPrefix {
    type Err = PrefixParseError;

    /// Parses either the IPv4 CIDR form `a.b.c.d/len` or the width-generic
    /// form `value/len@width`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, rest) = s.split_once('/').ok_or(PrefixParseError::MissingSlash)?;
        if let Some((len_part, width_part)) = rest.split_once('@') {
            let value: Bound = addr_part
                .parse()
                .map_err(|_| PrefixParseError::BadAddress(addr_part.to_string()))?;
            let len: u8 = len_part
                .parse()
                .map_err(|_| PrefixParseError::BadLength(len_part.to_string()))?;
            let width: u8 = width_part
                .parse()
                .map_err(|_| PrefixParseError::BadLength(width_part.to_string()))?;
            if len > width || width == 0 || width > 127 {
                return Err(PrefixParseError::BadLength(rest.to_string()));
            }
            return Ok(IpPrefix::new(value, len, width));
        }
        let octets: Vec<&str> = addr_part.split('.').collect();
        if octets.len() != 4 {
            return Err(PrefixParseError::BadAddress(addr_part.to_string()));
        }
        let mut addr: u32 = 0;
        for o in octets {
            let b: u8 = o
                .parse()
                .map_err(|_| PrefixParseError::BadAddress(addr_part.to_string()))?;
            addr = (addr << 8) | u32::from(b);
        }
        let len: u8 = rest
            .parse()
            .map_err(|_| PrefixParseError::BadLength(rest.to_string()))?;
        if len > 32 {
            return Err(PrefixParseError::BadLength(rest.to_string()));
        }
        Ok(IpPrefix::ipv4(addr, len))
    }
}

/// Formats a raw IPv4 address value as a dotted quad.
pub fn format_ipv4(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (addr >> 24) & 0xff,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

/// Formats the low 128 bits of a value as an IPv6 address in the canonical
/// RFC 5952 style: lower-case hextets with the longest run of two or more
/// zero hextets compressed to `::`.
pub fn format_ipv6(addr: u128) -> String {
    let hextets: [u16; 8] = std::array::from_fn(|i| (addr >> (112 - 16 * i)) as u16);
    // Longest run of zero hextets (leftmost wins on ties), min length 2.
    let (mut best_start, mut best_len) = (0usize, 0usize);
    let (mut run_start, mut run_len) = (0usize, 0usize);
    for (i, &h) in hextets.iter().enumerate() {
        if h == 0 {
            if run_len == 0 {
                run_start = i;
            }
            run_len += 1;
            if run_len > best_len {
                best_start = run_start;
                best_len = run_len;
            }
        } else {
            run_len = 0;
        }
    }
    if best_len < 2 {
        return hextets.map(|h| format!("{h:x}")).join(":");
    }
    let head = hextets[..best_start]
        .iter()
        .map(|h| format!("{h:x}"))
        .collect::<Vec<_>>()
        .join(":");
    let tail = hextets[best_start + best_len..]
        .iter()
        .map(|h| format!("{h:x}"))
        .collect::<Vec<_>>()
        .join(":");
    format!("{head}::{tail}")
}

/// Formats a raw field value for human-readable output, choosing the
/// notation by field width: dotted-quad for 32-bit fields, RFC 5952 IPv6
/// for fields wider than 64 bits, and the plain decimal value otherwise
/// (ports, protocol numbers, and the toy field widths of the paper's
/// worked examples).
pub fn format_field(value: Bound, width: u8) -> String {
    match width {
        32 => format_ipv4(value as u32),
        w if w > 64 => format_ipv6(value),
        _ => value.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_prefixes() {
        // Table 1: 0.0.0.10/31 (drop, high) and 0.0.0.0/28 (forward, low).
        let high: IpPrefix = "0.0.0.10/31".parse().unwrap();
        assert_eq!(high.interval(), Interval::new(10, 12));
        let low: IpPrefix = "0.0.0.0/28".parse().unwrap();
        assert_eq!(low.interval(), Interval::new(0, 16));
        assert!(low.covers(&high));
        assert!(!high.covers(&low));
    }

    #[test]
    fn parse_roundtrip_display() {
        for s in ["10.0.0.0/8", "192.168.1.0/24", "0.0.0.0/0", "1.2.3.4/32"] {
            let p: IpPrefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_width_generic_form() {
        let p: IpPrefix = "10/3@4".parse().unwrap();
        // 4-bit field; 10 = 0b1010 with len 3 aligns to 0b1010 & !1 = 10.
        assert_eq!(p.width(), 4);
        assert_eq!(p.interval(), Interval::new(10, 12));
    }

    #[test]
    fn new_masks_unaligned_host_bits() {
        let p = IpPrefix::ipv4(0x0a0b_0c0d, 16);
        assert_eq!(p.value(), 0x0a0b_0000);
        assert_eq!(p.to_string(), "10.11.0.0/16");
    }

    #[test]
    fn default_route_covers_everything() {
        let def = IpPrefix::ipv4(0, 0);
        assert!(def.is_default_route());
        assert_eq!(def.interval(), Interval::new(0, 1u128 << 32));
        assert_eq!(def.address_count(), 1u128 << 32);
        assert!(def.covers(&IpPrefix::ipv4(0xffff_ffff, 32)));
    }

    #[test]
    fn host_route_matches_single_address() {
        let host = IpPrefix::ipv4(0x0102_0304, 32);
        assert_eq!(host.address_count(), 1);
        assert!(host.matches(0x0102_0304));
        assert!(!host.matches(0x0102_0305));
    }

    #[test]
    fn same_lower_bound_different_length() {
        // Paper §3.1: 1.2.0.0/16 and 1.2.0.0/24 share a lower bound.
        let a: IpPrefix = "1.2.0.0/16".parse().unwrap();
        let b: IpPrefix = "1.2.0.0/24".parse().unwrap();
        assert_eq!(a.interval().lo(), b.interval().lo());
        assert!(a.interval().hi() > b.interval().hi());
        assert!(a.covers(&b));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "10.0.0.0".parse::<IpPrefix>(),
            Err(PrefixParseError::MissingSlash)
        );
        assert!(matches!(
            "10.0.0/8".parse::<IpPrefix>(),
            Err(PrefixParseError::BadAddress(_))
        ));
        assert!(matches!(
            "10.0.0.0/33".parse::<IpPrefix>(),
            Err(PrefixParseError::BadLength(_))
        ));
        assert!(matches!(
            "300.0.0.0/8".parse::<IpPrefix>(),
            Err(PrefixParseError::BadAddress(_))
        ));
        assert!(matches!(
            "5/9@8".parse::<IpPrefix>(),
            Err(PrefixParseError::BadLength(_))
        ));
    }

    #[test]
    fn format_ipv4_helper() {
        assert_eq!(format_ipv4(0xc0a8_0101), "192.168.1.1");
        assert_eq!(format_ipv4(0), "0.0.0.0");
    }

    #[test]
    fn format_ipv6_helper() {
        assert_eq!(format_ipv6(0), "::");
        assert_eq!(format_ipv6(1), "::1");
        assert_eq!(
            format_ipv6(0x2001_0db8_0000_0000_0000_0000_0000_0001),
            "2001:db8::1"
        );
        // No run of >= 2 zero hextets: no compression.
        assert_eq!(
            format_ipv6(0x0001_0002_0003_0004_0005_0006_0007_0008),
            "1:2:3:4:5:6:7:8"
        );
        // The longest zero run is compressed; leftmost wins on ties.
        assert_eq!(
            format_ipv6(0x0000_0000_0001_0000_0000_0000_0001_0002),
            "0:0:1::1:2"
        );
        assert_eq!(
            format_ipv6(0x0000_0000_0001_0000_0000_0001_0002_0003),
            "::1:0:0:1:2:3"
        );
        assert_eq!(
            format_ipv6(0xffff_0000_0000_0000_0000_0000_0000_0000),
            "ffff::"
        );
    }

    #[test]
    fn format_field_picks_notation_by_width() {
        assert_eq!(format_field(0xc0a8_0101, 32), "192.168.1.1");
        assert_eq!(format_field(80, 16), "80");
        assert_eq!(format_field(10, 4), "10");
        assert_eq!(format_field(1, 127), "::1");
        assert_eq!(format_field(99, 64), "99");
    }

    #[test]
    fn covers_requires_same_width() {
        let a = IpPrefix::new(0, 0, 32);
        let b = IpPrefix::new(0, 0, 16);
        assert!(!a.covers(&b));
    }
}
