//! Network topology: nodes, directed links, and graph utilities.
//!
//! Delta-net's edge-labelled graph (§2.1, §3.2) is defined over a directed
//! graph induced by the network topology. A *node* corresponds to a switch
//! (or, per §4.1, to a `(switch, input-port)` pair when composite match
//! conditions are encoded), and a *link* is a directed edge between two
//! nodes. Every forwarding rule carries the link along which it forwards
//! matched packets.
//!
//! Dropped traffic is modelled explicitly: each node can lazily obtain a
//! *drop link* to a single shared virtual sink node, so that a drop rule is
//! just a rule whose link points at the sink. This keeps Algorithm 1/2 free
//! of special cases, exactly as the paper's `link(r)` abstraction intends
//! ("link(r) is purposefully more general than a pair of ports").

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a node (switch / port-qualified switch) in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed link in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The node id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A directed link `src -> dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// The link's identifier (its index in [`Topology::links`]).
    pub id: LinkId,
    /// Source node (the switch on which rules using this link live).
    pub src: NodeId,
    /// Destination node (next hop).
    pub dst: NodeId,
}

/// A directed network topology with named nodes.
///
/// Node and link identifiers are dense indices, which lets the verification
/// engines use plain vectors for all per-node / per-link state.
///
/// # Examples
///
/// ```
/// use netmodel::topology::Topology;
///
/// let mut topo = Topology::new();
/// let s1 = topo.add_node("s1");
/// let s2 = topo.add_node("s2");
/// let l = topo.add_link(s1, s2);
/// assert_eq!(topo.link(l).src, s1);
/// assert_eq!(topo.link_between(s1, s2), Some(l));
/// assert_eq!(topo.out_links(s1), &[l]);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    node_names: Vec<String>,
    links: Vec<Link>,
    out: Vec<Vec<LinkId>>,
    inbound: Vec<Vec<LinkId>>,
    by_endpoints: HashMap<(NodeId, NodeId), LinkId>,
    /// Per-node lazily created link to the drop sink.
    drop_links: Vec<Option<LinkId>>,
    /// The shared virtual sink node, created on first use.
    drop_node: Option<NodeId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node with the given human-readable name and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.into());
        self.out.push(Vec::new());
        self.inbound.push(Vec::new());
        self.drop_links.push(None);
        id
    }

    /// Adds `n` nodes named `prefix0 .. prefix(n-1)` and returns their ids.
    pub fn add_nodes(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|i| self.add_node(format!("{prefix}{i}")))
            .collect()
    }

    /// Adds a directed link `src -> dst`, or returns the existing one if the
    /// pair is already connected.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId) -> LinkId {
        assert!(src.index() < self.node_names.len(), "unknown src {src:?}");
        assert!(dst.index() < self.node_names.len(), "unknown dst {dst:?}");
        if let Some(&id) = self.by_endpoints.get(&(src, dst)) {
            return id;
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { id, src, dst });
        self.out[src.index()].push(id);
        self.inbound[dst.index()].push(id);
        self.by_endpoints.insert((src, dst), id);
        id
    }

    /// Adds both directed links between `a` and `b` and returns them as
    /// `(a->b, b->a)`.
    pub fn add_bidi_link(&mut self, a: NodeId, b: NodeId) -> (LinkId, LinkId) {
        (self.add_link(a, b), self.add_link(b, a))
    }

    /// Returns (creating it on first use) this node's link to the virtual
    /// drop sink. Rules with a drop action use this link.
    pub fn drop_link(&mut self, node: NodeId) -> LinkId {
        if let Some(l) = self.drop_links[node.index()] {
            return l;
        }
        let sink = match self.drop_node {
            Some(s) => s,
            None => {
                let s = self.add_node("<drop>");
                self.drop_node = Some(s);
                s
            }
        };
        let l = self.add_link(node, sink);
        self.drop_links[node.index()] = Some(l);
        l
    }

    /// The virtual drop sink, if any drop link has been created.
    pub fn drop_node(&self) -> Option<NodeId> {
        self.drop_node
    }

    /// Whether `node` is the virtual drop sink.
    pub fn is_drop_node(&self, node: NodeId) -> bool {
        self.drop_node == Some(node)
    }

    /// Whether `link` is a drop link (points at the virtual sink).
    pub fn is_drop_link(&self, link: LinkId) -> bool {
        self.drop_node
            .map(|s| self.link(link).dst == s)
            .unwrap_or(false)
    }

    /// Number of nodes, including the drop sink if it exists.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of links, including drop links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The name given to `node` when it was added.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// Looks a node up by name (linear scan; only used by loaders and tests).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// The link with the given id.
    #[inline]
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// All links, in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All node ids, in id order (including the drop sink if present).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len() as u32).map(NodeId)
    }

    /// All node ids excluding the virtual drop sink.
    pub fn switch_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let drop = self.drop_node;
        self.nodes().filter(move |n| Some(*n) != drop)
    }

    /// All links excluding drop links.
    pub fn switch_links(&self) -> impl Iterator<Item = Link> + '_ {
        self.links
            .iter()
            .copied()
            .filter(move |l| !self.is_drop_link(l.id))
    }

    /// The link `src -> dst`, if it exists.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.by_endpoints.get(&(src, dst)).copied()
    }

    /// Out-links of a node, in insertion order.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out[node.index()]
    }

    /// In-links of a node, in insertion order.
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        &self.inbound[node.index()]
    }

    /// Breadth-first shortest-path predecessors towards `dst`: for every node
    /// that can reach `dst`, the out-link taking it one hop closer.
    ///
    /// Drop links are never traversed. This is the primitive the workload
    /// generators use to install shortest-path routes towards a destination
    /// (the same mechanism as the paper's INET/Libra rule generation, §4.2.1).
    pub fn shortest_path_next_hop(&self, dst: NodeId) -> Vec<Option<LinkId>> {
        let mut next: Vec<Option<LinkId>> = vec![None; self.node_count()];
        let mut dist: Vec<u32> = vec![u32::MAX; self.node_count()];
        dist[dst.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            // Walk edges *into* u: predecessors of u reach dst through u.
            for &lid in self.in_links(u) {
                if self.is_drop_link(lid) {
                    continue;
                }
                let link = self.link(lid);
                let v = link.src;
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    next[v.index()] = Some(lid);
                    queue.push_back(v);
                }
            }
        }
        next
    }

    /// The sequence of links on a shortest path from `src` to `dst`, if one
    /// exists (drop links excluded).
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let next = self.shortest_path_next_hop(dst);
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            let lid = next[cur.index()]?;
            path.push(lid);
            cur = self.link(lid).dst;
            if path.len() > self.node_count() {
                return None; // defensive: should be unreachable
            }
        }
        Some(path)
    }

    /// Shortest-path next hops towards `dst` when the given links are
    /// considered failed. Used by the SDN-IP simulator to recompute routes
    /// after a link failure.
    pub fn shortest_path_next_hop_avoiding(
        &self,
        dst: NodeId,
        failed: &[LinkId],
    ) -> Vec<Option<LinkId>> {
        let mut next: Vec<Option<LinkId>> = vec![None; self.node_count()];
        let mut dist: Vec<u32> = vec![u32::MAX; self.node_count()];
        dist[dst.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            for &lid in self.in_links(u) {
                if self.is_drop_link(lid) || failed.contains(&lid) {
                    continue;
                }
                let v = self.link(lid).src;
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    next[v.index()] = Some(lid);
                    queue.push_back(v);
                }
            }
        }
        next
    }

    /// Whether every switch node can reach every other switch node.
    pub fn is_strongly_connected(&self) -> bool {
        let switches: Vec<NodeId> = self.switch_nodes().collect();
        if switches.is_empty() {
            return true;
        }
        for &dst in &switches {
            let next = self.shortest_path_next_hop(dst);
            for &src in &switches {
                if src != dst && next[src.index()].is_none() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Topology, Vec<NodeId>) {
        // s0 -> s1 -> s3, s0 -> s2 -> s3 (bidirectional)
        let mut t = Topology::new();
        let n = t.add_nodes("s", 4);
        t.add_bidi_link(n[0], n[1]);
        t.add_bidi_link(n[1], n[3]);
        t.add_bidi_link(n[0], n[2]);
        t.add_bidi_link(n[2], n[3]);
        (t, n)
    }

    #[test]
    fn add_nodes_and_links() {
        let (t, n) = diamond();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.link_count(), 8);
        assert_eq!(t.node_name(n[2]), "s2");
        assert_eq!(t.node_by_name("s3"), Some(n[3]));
        assert_eq!(t.node_by_name("nope"), None);
    }

    #[test]
    fn add_link_is_idempotent() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l1 = t.add_link(a, b);
        let l2 = t.add_link(a, b);
        assert_eq!(l1, l2);
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn out_and_in_links() {
        let (t, n) = diamond();
        assert_eq!(t.out_links(n[0]).len(), 2);
        assert_eq!(t.in_links(n[3]).len(), 2);
        for &lid in t.out_links(n[0]) {
            assert_eq!(t.link(lid).src, n[0]);
        }
    }

    #[test]
    fn drop_link_creates_single_sink() {
        let (mut t, n) = diamond();
        let d0 = t.drop_link(n[0]);
        let d1 = t.drop_link(n[1]);
        let d0_again = t.drop_link(n[0]);
        assert_eq!(d0, d0_again);
        assert_ne!(d0, d1);
        assert!(t.is_drop_link(d0));
        assert!(t.is_drop_link(d1));
        let sink = t.drop_node().unwrap();
        assert!(t.is_drop_node(sink));
        assert_eq!(t.link(d0).dst, sink);
        assert_eq!(t.link(d1).dst, sink);
        // Switch iterators exclude the sink and drop links.
        assert_eq!(t.switch_nodes().count(), 4);
        assert!(t.switch_links().all(|l| !t.is_drop_link(l.id)));
    }

    #[test]
    fn shortest_path_in_diamond() {
        let (t, n) = diamond();
        let path = t.shortest_path(n[0], n[3]).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(t.link(path[0]).src, n[0]);
        assert_eq!(t.link(path[1]).dst, n[3]);
        assert_eq!(t.shortest_path(n[0], n[0]), Some(vec![]));
    }

    #[test]
    fn shortest_path_next_hop_covers_all_nodes() {
        let (t, n) = diamond();
        let next = t.shortest_path_next_hop(n[3]);
        for &src in &n {
            if src == n[3] {
                assert!(next[src.index()].is_none());
            } else {
                assert!(next[src.index()].is_some());
            }
        }
    }

    #[test]
    fn shortest_path_avoiding_failed_link() {
        let (t, n) = diamond();
        let via_1 = t.link_between(n[0], n[1]).unwrap();
        let next = t.shortest_path_next_hop_avoiding(n[3], &[via_1]);
        // s0 must now route via s2.
        let lid = next[n[0].index()].unwrap();
        assert_eq!(t.link(lid).dst, n[2]);
    }

    #[test]
    fn disconnected_node_has_no_path() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(a, b);
        assert!(t.shortest_path(a, c).is_none());
        assert!(!t.is_strongly_connected());
    }

    #[test]
    fn diamond_is_strongly_connected() {
        let (t, _) = diamond();
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn drop_links_are_not_traversed_by_paths() {
        let (mut t, n) = diamond();
        t.drop_link(n[0]);
        let sink = t.drop_node().unwrap();
        assert!(t.shortest_path(n[0], sink).is_none() || !t.is_strongly_connected());
        // The sink is not a switch node, so strong connectivity among
        // switches still holds.
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "l7");
    }
}
