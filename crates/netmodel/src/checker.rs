//! The common interface implemented by every data-plane checker.
//!
//! Both the Delta-net engine and the Veriflow-RI baseline implement
//! [`Checker`], which is what makes the paper-style head-to-head comparison
//! (Tables 3–5) and the differential property tests honest: the harness only
//! speaks this trait.

use crate::interval::Interval;
use crate::rule::RuleId;
use crate::topology::{LinkId, NodeId};
use crate::trace::Op;
use std::fmt;

/// Why a single update could not be applied.
///
/// Checkers historically panicked on malformed updates; the fallible
/// `try_*` entry points return this error instead, so trace replay can
/// report *which* operation was bad (a withdrawn-twice BGP route, a trace
/// referencing an unknown rule id) without tearing the process down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// A removal referenced a rule id that is not installed.
    UnknownRule(RuleId),
    /// An insertion reused a rule id that is already installed.
    DuplicateRule(RuleId),
    /// An insertion referenced a link outside the checker's topology.
    UnknownLink {
        /// The offending rule.
        rule: RuleId,
        /// The link the rule referenced.
        link: LinkId,
    },
    /// An insertion whose match interval does not intersect a clipped
    /// (shard) engine's address range. Only produced by engines created
    /// with a clip; a sharded front-end routes rules so this never fires.
    OutsideShard {
        /// The offending rule.
        rule: RuleId,
        /// The address range the engine owns.
        range: Interval,
    },
    /// An insertion constraining more secondary header fields than the
    /// checker's declared [`crate::header::HeaderSpace`] — e.g. a
    /// `[dst, src]` rule replayed into a single-field engine. Rules
    /// constraining *fewer* fields are fine (missing fields are wildcards).
    FieldMismatch {
        /// The offending rule.
        rule: RuleId,
        /// Secondary fields the checker's header space declares.
        declared: usize,
        /// Secondary fields the rule constrains.
        constrained: usize,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownRule(id) => write!(f, "removal of unknown rule {id:?}"),
            UpdateError::DuplicateRule(id) => write!(f, "rule {id:?} inserted twice"),
            UpdateError::UnknownLink { rule, link } => {
                write!(f, "rule {rule:?} references unknown link {link:?}")
            }
            UpdateError::OutsideShard { rule, range } => {
                write!(f, "rule {rule:?} does not intersect shard range {range}")
            }
            UpdateError::FieldMismatch {
                rule,
                declared,
                constrained,
            } => {
                write!(
                    f,
                    "rule {rule:?} constrains {constrained} secondary header field(s) \
                     but the engine's header space declares {declared}"
                )
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A failed trace replay: which operation failed, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// 0-based index of the failing operation in the replayed slice.
    pub index: usize,
    /// The underlying update error.
    pub error: UpdateError,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace op {}: {}", self.index, self.error)
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A violation of a network-wide invariant found while checking an update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A forwarding loop: packets in `packets` injected anywhere on the
    /// cycle revisit `nodes` forever.
    ForwardingLoop {
        /// The nodes on the cycle, in traversal order (first node repeated
        /// implicitly).
        nodes: Vec<NodeId>,
        /// The set of destination addresses (as normalized intervals) that
        /// traverse the cycle.
        packets: Vec<Interval>,
    },
    /// A blackhole: packets in `packets` arriving at `node` match no rule.
    ///
    /// Only reported by checkers configured to look for blackholes; the
    /// paper's evaluation checks forwarding loops.
    Blackhole {
        /// The switch where the packets die.
        node: NodeId,
        /// The affected destination addresses as normalized intervals.
        packets: Vec<Interval>,
    },
}

impl InvariantViolation {
    /// Whether this violation is a forwarding loop.
    pub fn is_loop(&self) -> bool {
        matches!(self, InvariantViolation::ForwardingLoop { .. })
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::ForwardingLoop { nodes, packets } => {
                write!(f, "forwarding loop through ")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, " for {} packet interval(s)", packets.len())
            }
            InvariantViolation::Blackhole { node, packets } => {
                write!(
                    f,
                    "blackhole at {node} for {} packet interval(s)",
                    packets.len()
                )
            }
        }
    }
}

/// What a checker reports after applying one operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// The rule the operation concerned.
    pub rule_id: Option<RuleId>,
    /// Whether the operation was an insertion.
    pub was_insert: bool,
    /// How many packet classes the checker considered affected by the
    /// operation: atoms whose ownership changed (Delta-net) or equivalence
    /// classes recomputed (Veriflow-RI). This is the quantity Appendix C
    /// reports.
    pub affected_classes: usize,
    /// Links whose label / forwarding behaviour changed due to the update
    /// (the delta-graph's edge set for Delta-net).
    pub changed_links: Vec<LinkId>,
    /// Invariant violations found by the per-update property check.
    pub violations: Vec<InvariantViolation>,
}

impl UpdateReport {
    /// Whether any forwarding loop was reported.
    pub fn has_loop(&self) -> bool {
        self.violations.iter().any(InvariantViolation::is_loop)
    }
}

/// What a checker reports for a "what if this link failed?" query (§4.3.2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WhatIfReport {
    /// The hypothetically failed link.
    pub link: Option<LinkId>,
    /// Packet classes (atoms / ECs) that were using the failed link.
    pub affected_classes: usize,
    /// The destination addresses using the failed link, as normalized
    /// intervals.
    pub affected_packets: Vec<Interval>,
    /// Links elsewhere in the network that carry any of the affected packet
    /// classes (i.e. the parts of the network touched by the failure).
    pub affected_links: Vec<LinkId>,
    /// Invariant violations found in the affected portion of the data plane
    /// (only populated when the query is asked to also run property checks).
    pub violations: Vec<InvariantViolation>,
}

/// A real-time data-plane checker: consumes a stream of rule insertions and
/// removals, maintains whatever internal representation it likes, and
/// answers per-update and what-if queries.
pub trait Checker {
    /// A short human-readable name ("delta-net", "veriflow-ri").
    fn name(&self) -> &'static str;

    /// Applies one operation and checks the configured invariants on the
    /// affected part of the data plane.
    fn apply(&mut self, op: &Op) -> UpdateReport;

    /// Fallible form of [`Checker::apply`]: a malformed operation (unknown
    /// rule removal, duplicate insertion) is reported as an
    /// [`UpdateError`] without mutating the checker, instead of panicking.
    fn try_apply(&mut self, op: &Op) -> Result<UpdateReport, UpdateError>;

    /// Answers the link-failure "what if" query of §4.3.2: which packets and
    /// which parts of the network are affected if `link` fails? When
    /// `check_loops` is true, also checks the affected portion for
    /// forwarding loops (the `+Loops` column of Table 4).
    fn what_if_link_failure(&self, link: LinkId, check_loops: bool) -> WhatIfReport;

    /// Number of rules currently installed.
    fn rule_count(&self) -> usize;

    /// Number of packet classes currently maintained (atoms for Delta-net,
    /// trie-induced classes for Veriflow-RI; used by Table 3).
    fn class_count(&self) -> usize;

    /// Estimated heap memory in bytes used by the checker's internal state
    /// (Table 5 / Appendix D).
    fn memory_bytes(&self) -> usize;

    /// The invariant violations currently active in the data plane, when
    /// the checker maintains them as live state (incremental violation
    /// monitoring). `None` — the default — means the checker does not
    /// monitor and callers must fall back to full-plane scans. A `Some`
    /// answer must equal what full loop + blackhole scans of the current
    /// data plane would report.
    fn active_violations(&self) -> Option<Vec<InvariantViolation>> {
        None
    }

    /// Replays a whole trace, returning one report per operation.
    fn replay(&mut self, ops: &[Op]) -> Vec<UpdateReport> {
        ops.iter().map(|op| self.apply(op)).collect()
    }

    /// Fallible replay: stops at the first malformed operation and reports
    /// its index. Operations before the failing one stay applied, so a
    /// caller can resume or inspect the partially replayed state.
    fn try_replay(&mut self, ops: &[Op]) -> Result<Vec<UpdateReport>, ReplayError> {
        ops.iter()
            .enumerate()
            .map(|(index, op)| {
                self.try_apply(op)
                    .map_err(|error| ReplayError { index, error })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_and_kind() {
        let v = InvariantViolation::ForwardingLoop {
            nodes: vec![NodeId(0), NodeId(1)],
            packets: vec![Interval::new(0, 10)],
        };
        assert!(v.is_loop());
        let s = v.to_string();
        assert!(s.contains("forwarding loop"));
        assert!(s.contains("n0 -> n1"));

        let b = InvariantViolation::Blackhole {
            node: NodeId(3),
            packets: vec![],
        };
        assert!(!b.is_loop());
        assert!(b.to_string().contains("blackhole at n3"));
    }

    #[test]
    fn update_report_has_loop() {
        let mut rep = UpdateReport::default();
        assert!(!rep.has_loop());
        rep.violations.push(InvariantViolation::Blackhole {
            node: NodeId(0),
            packets: vec![],
        });
        assert!(!rep.has_loop());
        rep.violations.push(InvariantViolation::ForwardingLoop {
            nodes: vec![NodeId(0)],
            packets: vec![],
        });
        assert!(rep.has_loop());
    }
}
