//! Reference forwarding tables — the "ground truth" oracle.
//!
//! [`ForwardingTable`] is a deliberately simple per-switch rule store with
//! linear-scan highest-priority matching, and [`NetworkFib`] composes one per
//! switch and traces individual packets hop by hop. Neither is fast — that
//! is the point: they are obviously-correct implementations of the data
//! plane semantics, used by the differential and property tests to validate
//! both the Delta-net engine and the Veriflow-RI baseline.

use crate::interval::Bound;
use crate::packet::Packet;
use crate::rule::{Rule, RuleId};
use crate::topology::{LinkId, NodeId, Topology};
use std::collections::HashMap;

/// A single switch's forwarding table: a flat set of rules with
/// highest-priority-wins matching.
#[derive(Clone, Debug, Default)]
pub struct ForwardingTable {
    rules: Vec<Rule>,
}

impl ForwardingTable {
    /// Creates an empty forwarding table.
    pub fn new() -> Self {
        ForwardingTable::default()
    }

    /// Installs a rule.
    ///
    /// # Panics
    ///
    /// Panics if an overlapping rule with the same priority is already
    /// present (the paper's well-formedness assumption, §3.2 footnote 2) or
    /// if a rule with the same id is already installed.
    pub fn insert(&mut self, rule: Rule) {
        for r in &self.rules {
            assert!(r.id != rule.id, "duplicate rule id {:?}", rule.id);
            assert!(
                !r.conflicts_with(&rule),
                "overlapping rules with equal priority: {r} vs {rule}"
            );
        }
        self.rules.push(rule);
    }

    /// Removes a rule by id, returning it if it was present.
    pub fn remove(&mut self, id: RuleId) -> Option<Rule> {
        let pos = self.rules.iter().position(|r| r.id == id)?;
        Some(self.rules.swap_remove(pos))
    }

    /// The highest-priority rule matching the destination address, if any.
    /// Secondary-field constraints are evaluated against a packet whose
    /// secondary values are all 0; use [`ForwardingTable::lookup_packet`]
    /// for a concrete multi-field header.
    pub fn lookup(&self, dst: Bound) -> Option<&Rule> {
        self.lookup_packet(&Packet::to(dst))
    }

    /// The highest-priority rule matching every field of the packet's
    /// header, if any.
    pub fn lookup_packet(&self, packet: &Packet) -> Option<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.matches_packet(packet))
            .max_by_key(|r| r.priority)
    }

    /// All installed rules (unspecified order).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// What happened to a concretely traced packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The packet reached a node with no matching rule (a blackhole).
    Blackhole(NodeId),
    /// The packet was dropped by an explicit drop rule at this node.
    Dropped(NodeId),
    /// The packet revisited a node: a forwarding loop through these nodes.
    Loop(Vec<NodeId>),
    /// The packet left the traced portion of the network at this node (no
    /// outgoing hop but an explicit forward towards a node with no table,
    /// e.g. an external border router).
    Exited(NodeId),
}

/// The full hop-by-hop trace of a packet through the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketTrace {
    /// Nodes visited, starting with the injection point.
    pub path: Vec<NodeId>,
    /// Links traversed (one fewer than `path` unless a loop truncated it).
    pub links: Vec<LinkId>,
    /// How the trace ended.
    pub outcome: TraceOutcome,
}

/// The whole network's reference data plane: one [`ForwardingTable`] per
/// switch plus the topology to walk links.
#[derive(Clone, Debug)]
pub struct NetworkFib {
    topology: Topology,
    tables: Vec<ForwardingTable>,
    by_id: HashMap<RuleId, NodeId>,
}

impl NetworkFib {
    /// Creates an empty data plane over the given topology.
    pub fn new(topology: Topology) -> Self {
        let tables = (0..topology.node_count())
            .map(|_| ForwardingTable::new())
            .collect();
        NetworkFib {
            topology,
            tables,
            by_id: HashMap::new(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Installs a rule on its source switch.
    pub fn insert(&mut self, rule: Rule) {
        // The topology may have grown (drop links) after construction.
        while self.tables.len() < self.topology.node_count() {
            self.tables.push(ForwardingTable::new());
        }
        self.by_id.insert(rule.id, rule.source);
        self.tables[rule.source.index()].insert(rule);
    }

    /// Removes a rule by id, returning it if present.
    pub fn remove(&mut self, id: RuleId) -> Option<Rule> {
        let node = self.by_id.remove(&id)?;
        self.tables[node.index()].remove(id)
    }

    /// The forwarding table of a switch.
    pub fn table(&self, node: NodeId) -> &ForwardingTable {
        &self.tables[node.index()]
    }

    /// Total number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.by_id.len()
    }

    /// Traces a packet injected at `start` until it is dropped, blackholed,
    /// exits, or loops.
    pub fn trace(&self, start: NodeId, packet: Packet) -> PacketTrace {
        let mut path = vec![start];
        let mut links = Vec::new();
        let mut visited = vec![false; self.topology.node_count()];
        visited[start.index()] = true;
        let mut cur = start;
        loop {
            let table = match self.tables.get(cur.index()) {
                Some(t) => t,
                None => {
                    return PacketTrace {
                        path,
                        links,
                        outcome: TraceOutcome::Exited(cur),
                    }
                }
            };
            let rule = match table.lookup_packet(&packet) {
                Some(r) => r,
                None => {
                    let outcome = if self.topology.is_drop_node(cur) {
                        TraceOutcome::Dropped(cur)
                    } else {
                        TraceOutcome::Blackhole(cur)
                    };
                    return PacketTrace {
                        path,
                        links,
                        outcome,
                    };
                }
            };
            let link = self.topology.link(rule.link);
            links.push(rule.link);
            let next = link.dst;
            if self.topology.is_drop_node(next) {
                path.push(next);
                return PacketTrace {
                    path,
                    links,
                    outcome: TraceOutcome::Dropped(cur),
                };
            }
            if visited[next.index()] {
                // Truncate the loop to the cycle part.
                let start_idx = path.iter().position(|&n| n == next).unwrap_or(0);
                let cycle = path[start_idx..].to_vec();
                path.push(next);
                return PacketTrace {
                    path,
                    links,
                    outcome: TraceOutcome::Loop(cycle),
                };
            }
            visited[next.index()] = true;
            path.push(next);
            cur = next;
        }
    }

    /// Whether any destination address drawn from `samples` loops when
    /// injected at any switch. Used as a slow oracle in differential tests.
    pub fn any_loop_among(&self, samples: &[Bound]) -> bool {
        for node in self.topology.switch_nodes().collect::<Vec<_>>() {
            for &dst in samples {
                if matches!(
                    self.trace(node, Packet::to(dst)).outcome,
                    TraceOutcome::Loop(_)
                ) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::IpPrefix;

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    #[test]
    fn table_lookup_prefers_higher_priority() {
        // Table 1 of the paper: high-priority drop 0.0.0.10/31 over
        // low-priority forward 0.0.0.0/28.
        let mut topo = Topology::new();
        let s = topo.add_node("s");
        let t = topo.add_node("t");
        let fwd = topo.add_link(s, t);
        let drop = topo.drop_link(s);
        let mut table = ForwardingTable::new();
        table.insert(Rule::drop(RuleId(1), prefix("0.0.0.10/31"), 10, s, drop));
        table.insert(Rule::forward(RuleId(2), prefix("0.0.0.0/28"), 1, s, fwd));
        assert_eq!(table.lookup(10).unwrap().id, RuleId(1));
        assert_eq!(table.lookup(11).unwrap().id, RuleId(1));
        assert_eq!(table.lookup(9).unwrap().id, RuleId(2));
        assert_eq!(table.lookup(12).unwrap().id, RuleId(2));
        assert!(table.lookup(16).is_none());
    }

    #[test]
    fn table_remove() {
        let mut topo = Topology::new();
        let s = topo.add_node("s");
        let t = topo.add_node("t");
        let fwd = topo.add_link(s, t);
        let mut table = ForwardingTable::new();
        table.insert(Rule::forward(RuleId(2), prefix("0.0.0.0/28"), 1, s, fwd));
        assert_eq!(table.len(), 1);
        assert!(table.remove(RuleId(3)).is_none());
        assert_eq!(table.remove(RuleId(2)).unwrap().id, RuleId(2));
        assert!(table.is_empty());
        assert!(table.lookup(5).is_none());
    }

    #[test]
    #[should_panic(expected = "overlapping rules with equal priority")]
    fn conflicting_priorities_panic() {
        let mut topo = Topology::new();
        let s = topo.add_node("s");
        let t = topo.add_node("t");
        let fwd = topo.add_link(s, t);
        let mut table = ForwardingTable::new();
        table.insert(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 5, s, fwd));
        table.insert(Rule::forward(RuleId(2), prefix("10.0.0.0/16"), 5, s, fwd));
    }

    #[test]
    #[should_panic(expected = "duplicate rule id")]
    fn duplicate_id_panics() {
        let mut topo = Topology::new();
        let s = topo.add_node("s");
        let t = topo.add_node("t");
        let fwd = topo.add_link(s, t);
        let mut table = ForwardingTable::new();
        table.insert(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 5, s, fwd));
        table.insert(Rule::forward(RuleId(1), prefix("11.0.0.0/8"), 6, s, fwd));
    }

    fn chain_fib() -> (NetworkFib, Vec<NodeId>) {
        // a -> b -> c, all 10.0.0.0/8 traffic forwarded down the chain.
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 3);
        let ab = topo.add_link(n[0], n[1]);
        let bc = topo.add_link(n[1], n[2]);
        let mut fib = NetworkFib::new(topo);
        fib.insert(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], ab));
        fib.insert(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], bc));
        (fib, n)
    }

    #[test]
    fn trace_reaches_destination_blackhole() {
        let (fib, n) = chain_fib();
        let trace = fib.trace(n[0], Packet::to_ipv4(0x0a00_0001));
        assert_eq!(trace.path, vec![n[0], n[1], n[2]]);
        assert_eq!(trace.outcome, TraceOutcome::Blackhole(n[2]));
    }

    #[test]
    fn trace_unmatched_packet_blackholes_immediately() {
        let (fib, n) = chain_fib();
        let trace = fib.trace(n[0], Packet::to_ipv4(0xc0a8_0001));
        assert_eq!(trace.path, vec![n[0]]);
        assert_eq!(trace.outcome, TraceOutcome::Blackhole(n[0]));
    }

    #[test]
    fn trace_detects_loop() {
        // a -> b and b -> a for the same prefix: a two-node loop.
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 2);
        let ab = topo.add_link(n[0], n[1]);
        let ba = topo.add_link(n[1], n[0]);
        let mut fib = NetworkFib::new(topo);
        fib.insert(Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 1, n[0], ab));
        fib.insert(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, n[1], ba));
        let trace = fib.trace(n[0], Packet::to_ipv4(0x0a00_0001));
        assert!(matches!(trace.outcome, TraceOutcome::Loop(_)));
        assert!(fib.any_loop_among(&[0x0a00_0001]));
        assert!(!fib.any_loop_among(&[0xc0a8_0001]));
    }

    #[test]
    fn trace_drop_rule() {
        let mut topo = Topology::new();
        let n = topo.add_nodes("s", 2);
        let _ab = topo.add_link(n[0], n[1]);
        let dl = topo.drop_link(n[0]);
        let mut fib = NetworkFib::new(topo);
        fib.insert(Rule::drop(RuleId(1), prefix("10.0.0.0/8"), 9, n[0], dl));
        let trace = fib.trace(n[0], Packet::to_ipv4(0x0a00_0001));
        assert_eq!(trace.outcome, TraceOutcome::Dropped(n[0]));
    }

    #[test]
    fn multifield_lookup_intersects_all_fields() {
        use crate::header::SecondaryMatch;
        use crate::interval::Interval;
        let mut topo = Topology::new();
        let s = topo.add_node("s");
        let t = topo.add_node("t");
        let u = topo.add_node("u");
        let st = topo.add_link(s, t);
        let su = topo.add_link(s, u);
        let mut table = ForwardingTable::new();
        // High-priority rule constrained to src [100:200); low-priority
        // catch-all for the same prefix.
        table.insert(
            Rule::forward(RuleId(1), prefix("10.0.0.0/8"), 9, s, st)
                .with_secondary(SecondaryMatch::new(&[Interval::new(100, 200)])),
        );
        table.insert(Rule::forward(RuleId(2), prefix("10.0.0.0/8"), 1, s, su));
        let dst = 0x0a00_0001u128;
        let in_range = Packet::to(dst).with_field(0, 150);
        let out_of_range = Packet::to(dst).with_field(0, 250);
        assert_eq!(table.lookup_packet(&in_range).unwrap().id, RuleId(1));
        assert_eq!(table.lookup_packet(&out_of_range).unwrap().id, RuleId(2));
        // The single-field entry point sees secondary values of 0.
        assert_eq!(table.lookup(dst).unwrap().id, RuleId(2));
    }

    #[test]
    fn network_fib_insert_remove_roundtrip() {
        let (mut fib, n) = chain_fib();
        assert_eq!(fib.rule_count(), 2);
        let removed = fib.remove(RuleId(1)).unwrap();
        assert_eq!(removed.source, n[0]);
        assert_eq!(fib.rule_count(), 1);
        assert!(fib.remove(RuleId(1)).is_none());
        // After removal, traffic at n[0] blackholes.
        let trace = fib.trace(n[0], Packet::to_ipv4(0x0a00_0001));
        assert_eq!(trace.outcome, TraceOutcome::Blackhole(n[0]));
    }
}
