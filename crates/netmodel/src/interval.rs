//! Half-closed intervals over the packet-header field space.
//!
//! The Delta-net paper (§3.1) observes that an IP prefix such as
//! `0.0.0.10/31` is exactly the half-closed interval `[10 : 12)` of 32-bit
//! destination addresses. All of Delta-net's bookkeeping is phrased in terms
//! of such intervals, so this module provides the shared [`Interval`] type
//! together with the set-algebra helpers (intersection, adjacency, covering
//! checks) that both the Delta-net engine and the Veriflow-RI baseline need.
//!
//! Bounds are stored as `u128` so that any header field of up to 127 bits is
//! representable; IPv4 destination prefixes (the paper's evaluation) use the
//! sub-range `[0, 2^32]`.

use std::fmt;

/// The scalar type used for interval bounds.
///
/// `u128` comfortably holds the exclusive upper bound `2^k` for any field
/// width `k ≤ 127`. IPv4 uses `k = 32`.
pub type Bound = u128;

/// A half-closed interval `[lo : hi)` of packet-header field values.
///
/// Invariant: `lo < hi` for any interval produced by [`Interval::new`];
/// the empty interval is represented explicitly via [`Interval::is_empty`]
/// only when constructed through [`Interval::intersection`].
///
/// # Examples
///
/// ```
/// use netmodel::interval::Interval;
///
/// let a = Interval::new(10, 12); // the prefix 0.0.0.10/31
/// let b = Interval::new(0, 16);  // the prefix 0.0.0.0/28
/// assert!(b.contains_interval(&a));
/// assert_eq!(a.len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: Bound,
    hi: Bound,
}

impl Interval {
    /// Creates the half-closed interval `[lo : hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (an inverted interval is always a logic error in
    /// the callers; an empty interval `lo == hi` is permitted so that
    /// set-algebra helpers can return it).
    #[inline]
    pub fn new(lo: Bound, hi: Bound) -> Self {
        assert!(lo <= hi, "inverted interval [{lo} : {hi})");
        Interval { lo, hi }
    }

    /// The inclusive lower bound.
    #[inline]
    pub fn lo(&self) -> Bound {
        self.lo
    }

    /// The exclusive upper bound.
    #[inline]
    pub fn hi(&self) -> Bound {
        self.hi
    }

    /// Number of field values covered by the interval.
    #[inline]
    pub fn len(&self) -> Bound {
        self.hi - self.lo
    }

    /// Whether the interval covers no field value at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether the single value `x` lies inside the interval.
    #[inline]
    pub fn contains(&self, x: Bound) -> bool {
        self.lo <= x && x < self.hi
    }

    /// Whether `other` is fully covered by `self`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Whether the two intervals share at least one value.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// The intersection of the two intervals (possibly empty).
    #[inline]
    pub fn intersection(&self, other: &Interval) -> Interval {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo >= hi {
            Interval { lo, hi: lo }
        } else {
            Interval { lo, hi }
        }
    }

    /// Whether the two intervals are adjacent (touch without overlapping),
    /// i.e. their union would be a single interval.
    #[inline]
    pub fn adjacent(&self, other: &Interval) -> bool {
        self.hi == other.lo || other.hi == self.lo
    }

    /// The union of two overlapping or adjacent intervals.
    ///
    /// Returns `None` when the union would not be a single interval.
    pub fn union(&self, other: &Interval) -> Option<Interval> {
        if self.is_empty() {
            return Some(*other);
        }
        if other.is_empty() {
            return Some(*self);
        }
        if self.overlaps(other) || self.adjacent(other) {
            Some(Interval {
                lo: self.lo.min(other.lo),
                hi: self.hi.max(other.hi),
            })
        } else {
            None
        }
    }

    /// The parts of `self` not covered by `other`: zero, one, or two
    /// intervals, in increasing order.
    pub fn difference(&self, other: &Interval) -> Vec<Interval> {
        if !self.overlaps(other) {
            return if self.is_empty() { vec![] } else { vec![*self] };
        }
        let mut out = Vec::with_capacity(2);
        if self.lo < other.lo {
            out.push(Interval::new(self.lo, other.lo));
        }
        if other.hi < self.hi {
            out.push(Interval::new(other.hi, self.hi));
        }
        out
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} : {})", self.lo, self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} : {})", self.lo, self.hi)
    }
}

/// Normalizes a set of intervals: sorts them and merges overlapping or
/// adjacent ones, producing the unique minimal sorted representation.
///
/// Used by the lattice and query layers when reporting packet sets back to
/// users in interval form.
pub fn normalize(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.retain(|iv| !iv.is_empty());
    intervals.sort();
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match out.last_mut() {
            Some(last) if last.hi() >= iv.lo() => {
                if iv.hi() > last.hi() {
                    *last = Interval::new(last.lo(), iv.hi());
                }
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Total number of field values covered by a normalized interval set.
pub fn total_len(intervals: &[Interval]) -> Bound {
    intervals.iter().map(|iv| iv.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_prefix_10_slash_31() {
        // 0.0.0.10/31 == [10 : 12) == {10, 11}
        let iv = Interval::new(10, 12);
        assert!(iv.contains(10));
        assert!(iv.contains(11));
        assert!(!iv.contains(12));
        assert!(!iv.contains(9));
        assert_eq!(iv.len(), 2);
    }

    #[test]
    fn contains_interval_and_overlap() {
        let outer = Interval::new(0, 16);
        let inner = Interval::new(10, 12);
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        assert!(outer.overlaps(&inner));
        assert!(inner.overlaps(&outer));
    }

    #[test]
    fn disjoint_intervals_do_not_overlap() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 20);
        assert!(!a.overlaps(&b));
        assert!(a.adjacent(&b));
        assert!(b.adjacent(&a));
    }

    #[test]
    fn intersection_basics() {
        let a = Interval::new(0, 16);
        let b = Interval::new(10, 32);
        assert_eq!(a.intersection(&b), Interval::new(10, 16));
        let c = Interval::new(20, 24);
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn intersection_is_commutative_on_examples() {
        let cases = [
            (Interval::new(0, 5), Interval::new(3, 9)),
            (Interval::new(1, 2), Interval::new(2, 3)),
            (Interval::new(0, 100), Interval::new(50, 60)),
        ];
        for (a, b) in cases {
            assert_eq!(a.intersection(&b), b.intersection(&a));
        }
    }

    #[test]
    fn union_of_overlapping() {
        let a = Interval::new(0, 12);
        let b = Interval::new(10, 16);
        assert_eq!(a.union(&b), Some(Interval::new(0, 16)));
    }

    #[test]
    fn union_of_adjacent() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 16);
        assert_eq!(a.union(&b), Some(Interval::new(0, 16)));
    }

    #[test]
    fn union_of_disjoint_is_none() {
        let a = Interval::new(0, 4);
        let b = Interval::new(8, 16);
        assert_eq!(a.union(&b), None);
    }

    #[test]
    fn difference_splits_in_two() {
        let outer = Interval::new(0, 16);
        let inner = Interval::new(10, 12);
        let diff = outer.difference(&inner);
        assert_eq!(diff, vec![Interval::new(0, 10), Interval::new(12, 16)]);
    }

    #[test]
    fn difference_non_overlapping_returns_self() {
        let a = Interval::new(0, 4);
        let b = Interval::new(8, 16);
        assert_eq!(a.difference(&b), vec![a]);
    }

    #[test]
    fn difference_fully_covered_is_empty() {
        let a = Interval::new(10, 12);
        let b = Interval::new(0, 16);
        assert!(a.difference(&b).is_empty());
    }

    #[test]
    fn empty_interval_behaviour() {
        let e = Interval::new(5, 5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains(5));
        let a = Interval::new(0, 10);
        assert!(a.contains_interval(&e));
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_panics() {
        let _ = Interval::new(10, 5);
    }

    #[test]
    fn normalize_merges_and_sorts() {
        let set = vec![
            Interval::new(10, 12),
            Interval::new(0, 4),
            Interval::new(4, 8),
            Interval::new(11, 20),
            Interval::new(30, 30), // empty, dropped
        ];
        assert_eq!(
            normalize(set),
            vec![Interval::new(0, 8), Interval::new(10, 20)]
        );
    }

    #[test]
    fn normalize_idempotent() {
        let set = vec![Interval::new(0, 8), Interval::new(10, 20)];
        assert_eq!(normalize(set.clone()), set);
    }

    #[test]
    fn total_len_counts_values() {
        let set = vec![Interval::new(0, 8), Interval::new(10, 20)];
        assert_eq!(total_len(&set), 18);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Interval::new(10, 12).to_string(), "[10 : 12)");
    }
}
