//! Forwarding rules.
//!
//! A rule matches packets by a prefix over the primary header field (the
//! destination address, §3.1), optionally intersected with per-field
//! interval constraints on the secondary fields of a multi-field
//! [`crate::header::HeaderSpace`]. It carries a priority that resolves
//! overlaps within a forwarding table (§3.2) and is associated with a
//! directed link `link(r)` along which matched packets are forwarded. Drop
//! rules point at the topology's per-node drop link, so the verification
//! engines need no special casing for them.
//!
//! A rule built by [`Rule::forward`] / [`Rule::drop`] constrains no
//! secondary field and behaves exactly as in the single-field engine;
//! [`Rule::with_secondary`] layers the extra constraints on.

use crate::header::{HeaderMatch, SecondaryMatch};
use crate::interval::{Bound, Interval};
use crate::ip::IpPrefix;
use crate::packet::Packet;
use crate::topology::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique rule identifier.
///
/// Identifiers are assigned by the workload generators / controller
/// simulators and are stable across insertion and removal, which is what
/// lets a removal operation in a trace refer back to the rule it removes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuleId(pub u64);

impl RuleId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Rule priority. Higher numeric value wins, as in OpenFlow.
///
/// The paper assumes that overlapping rules in the same table have pair-wise
/// distinct priorities; the reference [`crate::fib::ForwardingTable`] checks
/// this assumption and the workload generators guarantee it.
pub type Priority = u32;

/// What a rule does with a matched packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Forward along the rule's link towards the link's destination node.
    Forward,
    /// Drop the packet (the rule's link points at the virtual drop sink).
    Drop,
}

/// An IP-prefix forwarding rule installed on a switch.
///
/// `source(r)` in the paper is the source node of `link`, available through
/// the topology; it is also cached here (`source`) so that the hot insertion
/// and removal paths never need to consult the topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// Stable identifier of the rule.
    pub id: RuleId,
    /// The destination IP prefix this rule matches.
    pub prefix: IpPrefix,
    /// The rule's priority within its forwarding table (higher wins).
    pub priority: Priority,
    /// The switch on which the rule is installed (`source(r)`).
    pub source: NodeId,
    /// The directed link along which matched packets are forwarded
    /// (`link(r)`); for [`Action::Drop`] rules this is the node's drop link.
    pub link: LinkId,
    /// The rule's action, kept for reporting purposes.
    pub action: Action,
    /// Per-field constraints on the secondary header fields; the default
    /// (no constraints) is the single-field shape.
    pub sec: SecondaryMatch,
}

impl Rule {
    /// Convenience constructor for a forwarding rule.
    pub fn forward(
        id: RuleId,
        prefix: IpPrefix,
        priority: Priority,
        source: NodeId,
        link: LinkId,
    ) -> Self {
        Rule {
            id,
            prefix,
            priority,
            source,
            link,
            action: Action::Forward,
            sec: SecondaryMatch::default(),
        }
    }

    /// Convenience constructor for a drop rule. `drop_link` must be the
    /// source node's drop link (see [`crate::topology::Topology::drop_link`]).
    pub fn drop(
        id: RuleId,
        prefix: IpPrefix,
        priority: Priority,
        source: NodeId,
        drop_link: LinkId,
    ) -> Self {
        Rule {
            id,
            prefix,
            priority,
            source,
            link: drop_link,
            action: Action::Drop,
            sec: SecondaryMatch::default(),
        }
    }

    /// The same rule with the given secondary-field constraints.
    pub fn with_secondary(mut self, sec: SecondaryMatch) -> Self {
        self.sec = sec;
        self
    }

    /// The half-closed interval of destination addresses matched by the rule
    /// (`interval(r)` in the paper, §3.1).
    #[inline]
    pub fn interval(&self) -> Interval {
        self.prefix.interval()
    }

    /// The inclusive lower bound of the rule's interval (`lower(r)`).
    #[inline]
    pub fn lower(&self) -> u128 {
        self.interval().lo()
    }

    /// The exclusive upper bound of the rule's interval (`upper(r)`).
    #[inline]
    pub fn upper(&self) -> u128 {
        self.interval().hi()
    }

    /// Whether this rule constrains any secondary header field.
    #[inline]
    pub fn is_multifield(&self) -> bool {
        !self.sec.is_empty()
    }

    /// The rule's complete multi-field match condition.
    #[inline]
    pub fn header_match(&self) -> HeaderMatch {
        HeaderMatch::new(self.interval(), self.sec)
    }

    /// Whether this rule matches a concrete header: the primary value must
    /// lie in the prefix and every constrained secondary field's value in
    /// its interval.
    #[inline]
    pub fn matches_values(&self, primary: Bound, secondary: &[Bound]) -> bool {
        self.interval().contains(primary) && self.sec.matches(secondary)
    }

    /// Whether this rule matches the given packet.
    #[inline]
    pub fn matches_packet(&self, packet: &Packet) -> bool {
        self.matches_values(packet.dst, &packet.sec)
    }

    /// Whether this rule and `other` live in the same forwarding table and
    /// their match conditions overlap **on every field** (in which case
    /// their priorities must differ for the data plane to be well defined).
    /// A secondary field unconstrained by either rule is a wildcard, so
    /// single-field rules conflict exactly as before.
    pub fn conflicts_with(&self, other: &Rule) -> bool {
        self.source == other.source
            && self.id != other.id
            && self.interval().overlaps(&other.interval())
            && self.sec.overlaps(&other.sec)
            && self.priority == other.priority
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{}: {} prio={} via {} ({:?})",
            self.id, self.source, self.prefix, self.priority, self.link, self.action
        )?;
        if !self.sec.is_empty() {
            write!(f, " {}", self.sec)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn two_node_topo() -> (Topology, NodeId, NodeId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_link(a, b);
        (t, a, b, l)
    }

    #[test]
    fn forward_rule_fields() {
        let (_t, a, _b, l) = two_node_topo();
        let p: IpPrefix = "10.0.0.0/8".parse().unwrap();
        let r = Rule::forward(RuleId(1), p, 100, a, l);
        assert_eq!(r.action, Action::Forward);
        assert_eq!(r.source, a);
        assert_eq!(r.link, l);
        assert_eq!(r.interval(), p.interval());
        assert_eq!(r.lower(), p.interval().lo());
        assert_eq!(r.upper(), p.interval().hi());
    }

    #[test]
    fn drop_rule_uses_drop_link() {
        let (mut t, a, _b, _l) = two_node_topo();
        let dl = t.drop_link(a);
        let p: IpPrefix = "0.0.0.10/31".parse().unwrap();
        let r = Rule::drop(RuleId(2), p, 200, a, dl);
        assert_eq!(r.action, Action::Drop);
        assert!(t.is_drop_link(r.link));
    }

    #[test]
    fn conflict_detection() {
        let (_t, a, _b, l) = two_node_topo();
        let p1: IpPrefix = "10.0.0.0/8".parse().unwrap();
        let p2: IpPrefix = "10.1.0.0/16".parse().unwrap();
        let p3: IpPrefix = "192.168.0.0/16".parse().unwrap();
        let r1 = Rule::forward(RuleId(1), p1, 100, a, l);
        let r2_same_prio = Rule::forward(RuleId(2), p2, 100, a, l);
        let r2_diff_prio = Rule::forward(RuleId(2), p2, 200, a, l);
        let r3 = Rule::forward(RuleId(3), p3, 100, a, l);
        assert!(r1.conflicts_with(&r2_same_prio));
        assert!(!r1.conflicts_with(&r2_diff_prio));
        assert!(!r1.conflicts_with(&r3)); // disjoint prefixes never conflict
        assert!(!r1.conflicts_with(&r1)); // a rule does not conflict with itself
    }

    #[test]
    fn rule_id_display() {
        assert_eq!(RuleId(42).to_string(), "r42");
        assert_eq!(format!("{:?}", RuleId(42)), "r42");
    }

    #[test]
    fn secondary_constraints() {
        let (_t, a, _b, l) = two_node_topo();
        let p: IpPrefix = "10.0.0.0/8".parse().unwrap();
        let plain = Rule::forward(RuleId(1), p, 100, a, l);
        assert!(!plain.is_multifield());
        assert!(plain.matches_values(0x0a00_0001, &[999]));
        let r = plain.with_secondary(SecondaryMatch::new(&[Interval::new(100, 200)]));
        assert!(r.is_multifield());
        assert!(r.matches_values(0x0a00_0001, &[150]));
        assert!(!r.matches_values(0x0a00_0001, &[200]));
        assert!(!r.matches_values(0x0b00_0001, &[150]));
        assert!(r.matches_packet(&Packet::to(0x0a00_0001).with_field(0, 150)));
        assert!(!r.matches_packet(&Packet::to(0x0a00_0001)));
        assert_eq!(r.header_match().primary, p.interval());
        assert!(r.to_string().contains("src=100:200"));
    }

    #[test]
    fn conflicts_respect_secondary_fields() {
        let (_t, a, _b, l) = two_node_topo();
        let p: IpPrefix = "10.0.0.0/8".parse().unwrap();
        let low = Rule::forward(RuleId(1), p, 100, a, l)
            .with_secondary(SecondaryMatch::new(&[Interval::new(0, 10)]));
        let high = Rule::forward(RuleId(2), p, 100, a, l)
            .with_secondary(SecondaryMatch::new(&[Interval::new(10, 20)]));
        // Same priority, overlapping prefixes, but disjoint src ranges:
        // no conflict.
        assert!(!low.conflicts_with(&high));
        let wild = Rule::forward(RuleId(3), p, 100, a, l);
        // A wildcard secondary overlaps both.
        assert!(low.conflicts_with(&wild));
        assert!(wild.conflicts_with(&high));
    }
}
