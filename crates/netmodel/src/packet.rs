//! A minimal packet-header model.
//!
//! The verification engines never materialize packets — that is the entire
//! point of atoms and equivalence classes — but the differential property
//! tests do: they pick concrete destination addresses, trace them hop by hop
//! through the reference forwarding tables, and compare the observed
//! behaviour against what the engines claim. [`Packet`] is that concrete
//! witness.

use crate::header::MAX_SECONDARY_FIELDS;
use crate::interval::Bound;
use crate::ip::format_ipv4;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A packet identified by the header fields the data plane matches on: the
/// primary field (the destination address, per the paper's evaluation) plus
/// the values of any declared secondary fields. Secondary values default to
/// 0 and are ignored by single-field rules, so single-field call sites are
/// untouched by the multi-field extension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Packet {
    /// The destination address as a raw field value (the primary field).
    pub dst: Bound,
    /// Values of the secondary header fields, in field order.
    pub sec: [Bound; MAX_SECONDARY_FIELDS],
}

impl Packet {
    /// A packet destined to the given raw field value.
    #[inline]
    pub fn to(dst: Bound) -> Self {
        Packet {
            dst,
            sec: [0; MAX_SECONDARY_FIELDS],
        }
    }

    /// A packet destined to the given IPv4 address.
    #[inline]
    pub fn to_ipv4(addr: u32) -> Self {
        Packet::to(Bound::from(addr))
    }

    /// The same packet with secondary field `i` set to `value`.
    #[inline]
    pub fn with_field(mut self, i: usize, value: Bound) -> Self {
        self.sec[i] = value;
        self
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dst <= Bound::from(u32::MAX) {
            write!(f, "pkt({})", format_ipv4(self.dst as u32))?;
        } else {
            write!(f, "pkt({})", self.dst)?;
        }
        if self.sec.iter().any(|&v| v != 0) {
            write!(f, "+{:?}", self.sec)?;
        }
        Ok(())
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Packet::to(10).dst, 10);
        assert_eq!(Packet::to_ipv4(0x0a00_0001).dst, 0x0a00_0001);
        let p = Packet::to(10).with_field(0, 77).with_field(1, 5);
        assert_eq!(p.sec, [77, 5]);
        assert_eq!(p.dst, 10);
    }

    #[test]
    fn debug_formats_ipv4() {
        assert_eq!(
            format!("{:?}", Packet::to_ipv4(0x0a00_0001)),
            "pkt(10.0.0.1)"
        );
        assert_eq!(
            format!("{}", Packet::to((1u128 << 64) + 5)),
            format!("pkt({})", (1u128 << 64) + 5)
        );
    }
}
