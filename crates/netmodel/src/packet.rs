//! A minimal packet-header model.
//!
//! The verification engines never materialize packets — that is the entire
//! point of atoms and equivalence classes — but the differential property
//! tests do: they pick concrete destination addresses, trace them hop by hop
//! through the reference forwarding tables, and compare the observed
//! behaviour against what the engines claim. [`Packet`] is that concrete
//! witness.

use crate::interval::Bound;
use crate::ip::format_ipv4;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A packet identified by the single header field the data plane matches on
/// (the destination address, per the paper's evaluation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Packet {
    /// The destination address as a raw field value.
    pub dst: Bound,
}

impl Packet {
    /// A packet destined to the given raw field value.
    #[inline]
    pub fn to(dst: Bound) -> Self {
        Packet { dst }
    }

    /// A packet destined to the given IPv4 address.
    #[inline]
    pub fn to_ipv4(addr: u32) -> Self {
        Packet {
            dst: Bound::from(addr),
        }
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dst <= Bound::from(u32::MAX) {
            write!(f, "pkt({})", format_ipv4(self.dst as u32))
        } else {
            write!(f, "pkt({})", self.dst)
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Packet::to(10).dst, 10);
        assert_eq!(Packet::to_ipv4(0x0a00_0001).dst, 0x0a00_0001);
    }

    #[test]
    fn debug_formats_ipv4() {
        assert_eq!(
            format!("{:?}", Packet::to_ipv4(0x0a00_0001)),
            "pkt(10.0.0.1)"
        );
        assert_eq!(
            format!("{}", Packet::to((1u128 << 64) + 5)),
            format!("pkt({})", (1u128 << 64) + 5)
        );
    }
}
