//! Multi-field header spaces.
//!
//! The paper phrases Delta-net over a single packet-header field (the
//! destination address), remarking that the interval representation
//! generalizes. This module is that generalization: a [`HeaderSpace`]
//! declares which fields a data plane matches on (e.g. `[dst]`,
//! `[dst, src]`, `[dst, src, dport]`), and a [`HeaderMatch`] carries one
//! half-closed interval per declared field.
//!
//! The first field is the **primary** field: it is the axis the atom
//! machinery, the labels, and shard partitioning run on, exactly as in the
//! single-field engine. The remaining fields are **secondary**: rules may
//! constrain them with an interval each, and the verification engines
//! intersect those constraints at check time. A rule that constrains no
//! secondary field behaves bit-identically to a single-field rule, which is
//! what keeps `[dst]` a first-class fast path rather than a degenerate case.

use crate::interval::{Bound, Interval};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of secondary fields a header space may declare (the
/// primary field is always present, so up to `1 + MAX_SECONDARY_FIELDS`
/// fields total — enough for `[dst, src, dport]`).
pub const MAX_SECONDARY_FIELDS: usize = 2;

/// Maximum bit-width of a *secondary* field. Secondary bounds are stored
/// inline in every rule as `u64`s (the compact representation keeps
/// `Rule` small enough that single-field replay speed is unaffected by the
/// multi-field support), so a secondary field's exclusive upper bound
/// `2^width` must fit in 64 bits with a spare bit. The primary field keeps
/// the full 1–127-bit range of the `u128` atom machinery.
pub const MAX_SECONDARY_WIDTH: u8 = 63;

/// Identifies one field of a header space by position: field 0 is the
/// primary field, fields `1..` are secondary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldId(pub u8);

impl FieldId {
    /// The primary field (the destination address in the paper's datasets).
    pub const DST: FieldId = FieldId(0);
    /// Conventional name for the first secondary field.
    pub const SRC: FieldId = FieldId(1);
    /// Conventional name for the second secondary field.
    pub const DPORT: FieldId = FieldId(2);

    /// The field's position as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Conventional display name for the field position.
    pub fn name(self) -> &'static str {
        match self.0 {
            0 => "dst",
            1 => "src",
            2 => "dport",
            _ => "field",
        }
    }
}

impl fmt::Debug for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The declared shape of a data plane's match space: the bit-width of the
/// primary field plus the widths of zero or more secondary fields.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HeaderSpace {
    widths: [u8; 1 + MAX_SECONDARY_FIELDS],
    count: u8,
}

impl HeaderSpace {
    /// A single-field space over a `width`-bit primary field — the paper's
    /// shape, and the fast path throughout the engines.
    pub fn single(width: u8) -> Self {
        HeaderSpace::new(&[width])
    }

    /// A two-field `[dst, src]` space.
    pub fn dst_src(dst_width: u8, src_width: u8) -> Self {
        HeaderSpace::new(&[dst_width, src_width])
    }

    /// A space over the given field widths (primary first).
    ///
    /// # Panics
    ///
    /// Panics if no field is given, more than `1 + MAX_SECONDARY_FIELDS`
    /// are, or any width is 0 or exceeds 127 bits (the `u128` bound
    /// representation needs one spare bit for the exclusive upper end).
    pub fn new(widths: &[u8]) -> Self {
        assert!(
            !widths.is_empty(),
            "a header space needs at least one field"
        );
        assert!(
            widths.len() <= 1 + MAX_SECONDARY_FIELDS,
            "at most {} fields supported, got {}",
            1 + MAX_SECONDARY_FIELDS,
            widths.len()
        );
        let mut stored = [0u8; 1 + MAX_SECONDARY_FIELDS];
        for (i, &w) in widths.iter().enumerate() {
            assert!(w > 0 && w <= 127, "unsupported field width {w}");
            assert!(
                i == 0 || w <= MAX_SECONDARY_WIDTH,
                "unsupported field width {w}: secondary fields are limited to \
                 {MAX_SECONDARY_WIDTH} bits"
            );
            stored[i] = w;
        }
        HeaderSpace {
            widths: stored,
            count: widths.len() as u8,
        }
    }

    /// Total number of fields (primary included), at least 1.
    #[inline]
    pub fn field_count(&self) -> usize {
        self.count as usize
    }

    /// Number of secondary fields.
    #[inline]
    pub fn secondary_count(&self) -> usize {
        self.count as usize - 1
    }

    /// Whether this is the single-field (paper) shape.
    #[inline]
    pub fn is_single_field(&self) -> bool {
        self.count == 1
    }

    /// Width in bits of the primary field.
    #[inline]
    pub fn primary_width(&self) -> u8 {
        self.widths[0]
    }

    /// Width in bits of secondary field `i` (0-based among the secondaries).
    #[inline]
    pub fn secondary_width(&self, i: usize) -> u8 {
        debug_assert!(i < self.secondary_count());
        self.widths[1 + i]
    }

    /// The full interval `[0 : 2^width)` of secondary field `i`.
    #[inline]
    pub fn secondary_full(&self, i: usize) -> Interval {
        Interval::new(0, 1u128 << self.secondary_width(i))
    }

    /// The field widths, primary first.
    pub fn widths(&self) -> &[u8] {
        &self.widths[..self.count as usize]
    }
}

impl fmt::Debug for HeaderSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..self.field_count() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", FieldId(i as u8), self.widths[i])?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for HeaderSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A rule's per-field secondary constraints: one interval for each of the
/// first `count` secondary fields of the data plane's header space.
///
/// The default value constrains nothing (`count == 0`), which is how every
/// pre-existing single-field constructor keeps compiling — and behaving —
/// unchanged.
/// The bounds live inline in every `Rule`, so the representation is kept
/// compact: `u64` bound pairs rather than the `u128` intervals of the
/// primary axis (hence [`MAX_SECONDARY_WIDTH`]). Growing this struct grows
/// `Rule` — and with it every trace buffer and the rule registry — which
/// measurably slows single-field replay, so think twice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SecondaryMatch {
    lo: [u64; MAX_SECONDARY_FIELDS],
    hi: [u64; MAX_SECONDARY_FIELDS],
    count: u8,
}

impl Default for SecondaryMatch {
    fn default() -> Self {
        SecondaryMatch {
            lo: [0; MAX_SECONDARY_FIELDS],
            hi: [0; MAX_SECONDARY_FIELDS],
            count: 0,
        }
    }
}

/// The constrained intervals of a [`SecondaryMatch`], materialized by
/// [`SecondaryMatch::intervals`]. Derefs to `[Interval]`, so slice methods
/// (`.iter()`, indexing, `.len()`) work directly; iterating the value
/// itself yields `Interval`s.
#[derive(Clone, Copy)]
pub struct SecIntervals {
    buf: [Interval; MAX_SECONDARY_FIELDS],
    len: u8,
}

impl std::ops::Deref for SecIntervals {
    type Target = [Interval];
    #[inline]
    fn deref(&self) -> &[Interval] {
        &self.buf[..self.len as usize]
    }
}

impl IntoIterator for SecIntervals {
    type Item = Interval;
    type IntoIter = std::iter::Take<std::array::IntoIter<Interval, MAX_SECONDARY_FIELDS>>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len as usize)
    }
}

impl SecondaryMatch {
    /// A constraint over the given secondary intervals (in field order).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SECONDARY_FIELDS`] intervals are given,
    /// any interval is empty (a rule matching nothing is meaningless), or
    /// any bound exceeds the [`MAX_SECONDARY_WIDTH`]-bit field range.
    pub fn new(intervals: &[Interval]) -> Self {
        assert!(
            intervals.len() <= MAX_SECONDARY_FIELDS,
            "at most {MAX_SECONDARY_FIELDS} secondary fields supported"
        );
        let mut sec = SecondaryMatch {
            count: intervals.len() as u8,
            ..SecondaryMatch::default()
        };
        for (i, iv) in intervals.iter().enumerate() {
            assert!(!iv.is_empty(), "empty secondary match interval {iv}");
            assert!(
                iv.hi() <= 1u128 << MAX_SECONDARY_WIDTH,
                "secondary bound {} exceeds the {MAX_SECONDARY_WIDTH}-bit field range",
                iv.hi()
            );
            sec.lo[i] = iv.lo() as u64;
            sec.hi[i] = iv.hi() as u64;
        }
        sec
    }

    /// Number of constrained secondary fields.
    #[inline]
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Whether no secondary field is constrained (the single-field shape).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The constrained intervals, in field order.
    #[inline]
    pub fn intervals(&self) -> SecIntervals {
        let mut buf = [Interval::new(0, 0); MAX_SECONDARY_FIELDS];
        for (i, slot) in buf.iter_mut().take(self.count as usize).enumerate() {
            *slot = Interval::new(self.lo[i] as u128, self.hi[i] as u128);
        }
        SecIntervals {
            buf,
            len: self.count,
        }
    }

    /// The constraint on secondary field `i`, or `None` when the field is
    /// unconstrained (matches its whole range).
    #[inline]
    pub fn get(&self, i: usize) -> Option<Interval> {
        (i < self.count as usize).then(|| Interval::new(self.lo[i] as u128, self.hi[i] as u128))
    }

    /// Whether the given secondary field values satisfy every constraint.
    /// Values past `count` are unconstrained and always match.
    #[inline]
    pub fn matches(&self, values: &[Bound]) -> bool {
        self.count as usize <= values.len()
            && (0..self.count as usize)
                .all(|i| (self.lo[i] as u128..self.hi[i] as u128).contains(&values[i]))
    }

    /// Whether two constraints overlap on every secondary field. A field
    /// unconstrained on either side is a wildcard and overlaps anything.
    pub fn overlaps(&self, other: &SecondaryMatch) -> bool {
        let shared = self.count.min(other.count) as usize;
        (0..shared).all(|i| self.lo[i] < other.hi[i] && other.lo[i] < self.hi[i])
    }
}

impl fmt::Debug for SecondaryMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, iv) in self.intervals().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}:{}", FieldId(1 + i as u8), iv.lo(), iv.hi())?;
        }
        Ok(())
    }
}

impl fmt::Display for SecondaryMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A complete multi-field match: the primary interval plus the secondary
/// constraints — `interval(r)` generalized to N fields.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HeaderMatch {
    /// The primary-field interval.
    pub primary: Interval,
    /// The secondary-field constraints.
    pub secondary: SecondaryMatch,
}

impl HeaderMatch {
    /// A match over the given primary interval and secondary constraints.
    pub fn new(primary: Interval, secondary: SecondaryMatch) -> Self {
        HeaderMatch { primary, secondary }
    }

    /// A single-field match (no secondary constraints).
    pub fn single(primary: Interval) -> Self {
        HeaderMatch {
            primary,
            secondary: SecondaryMatch::default(),
        }
    }

    /// Whether a header with the given primary value and secondary values
    /// is matched.
    #[inline]
    pub fn contains(&self, primary: Bound, secondary: &[Bound]) -> bool {
        self.primary.contains(primary) && self.secondary.matches(secondary)
    }

    /// Whether two matches overlap on every field.
    pub fn overlaps(&self, other: &HeaderMatch) -> bool {
        self.primary.overlaps(&other.primary) && self.secondary.overlaps(&other.secondary)
    }
}

impl fmt::Debug for HeaderMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.secondary.is_empty() {
            write!(f, "{}", self.primary)
        } else {
            write!(f, "{} {}", self.primary, self.secondary)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_shapes() {
        let s = HeaderSpace::single(32);
        assert!(s.is_single_field());
        assert_eq!(s.field_count(), 1);
        assert_eq!(s.secondary_count(), 0);
        assert_eq!(s.primary_width(), 32);
        assert_eq!(s.widths(), &[32]);

        let ds = HeaderSpace::dst_src(32, 16);
        assert!(!ds.is_single_field());
        assert_eq!(ds.secondary_count(), 1);
        assert_eq!(ds.secondary_width(0), 16);
        assert_eq!(ds.secondary_full(0), Interval::new(0, 1 << 16));
        assert_eq!(ds.to_string(), "[dst:32, src:16]");

        let three = HeaderSpace::new(&[32, 32, 16]);
        assert_eq!(three.secondary_count(), 2);
        assert_eq!(three.to_string(), "[dst:32, src:32, dport:16]");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_fields_panics() {
        HeaderSpace::new(&[8, 8, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "unsupported field width")]
    fn zero_width_panics() {
        HeaderSpace::new(&[8, 0]);
    }

    #[test]
    #[should_panic(expected = "secondary fields are limited")]
    fn wide_secondary_field_panics() {
        // The primary field may use the full 127-bit range; secondary
        // fields are capped so their bounds pack into the u64 inline
        // representation.
        HeaderSpace::new(&[127, 64]);
    }

    #[test]
    #[should_panic(expected = "exceeds the 63-bit field range")]
    fn wide_secondary_bound_panics() {
        SecondaryMatch::new(&[Interval::new(0, (1u128 << 63) + 1)]);
    }

    #[test]
    fn secondary_match_semantics() {
        let none = SecondaryMatch::default();
        assert!(none.is_empty());
        assert!(none.matches(&[5, 9]));
        assert!(none.matches(&[]));

        let m = SecondaryMatch::new(&[Interval::new(10, 20)]);
        assert_eq!(m.count(), 1);
        assert_eq!(m.get(0), Some(Interval::new(10, 20)));
        assert_eq!(m.get(1), None);
        assert!(m.matches(&[10]));
        assert!(m.matches(&[19, 777]));
        assert!(!m.matches(&[20]));
        assert!(!m.matches(&[]), "constrained field needs a value");

        // Wildcard on either side overlaps anything.
        assert!(m.overlaps(&none));
        assert!(none.overlaps(&m));
        let disjoint = SecondaryMatch::new(&[Interval::new(30, 40)]);
        assert!(!m.overlaps(&disjoint));
        let two = SecondaryMatch::new(&[Interval::new(15, 35), Interval::new(0, 4)]);
        assert!(m.overlaps(&two));
        assert_eq!(two.to_string(), "src=15:35 dport=0:4");
    }

    #[test]
    fn header_match_contains_and_overlaps() {
        let hm = HeaderMatch::new(
            Interval::new(0, 100),
            SecondaryMatch::new(&[Interval::new(5, 10)]),
        );
        assert!(hm.contains(50, &[7]));
        assert!(!hm.contains(50, &[10]));
        assert!(!hm.contains(100, &[7]));
        let single = HeaderMatch::single(Interval::new(50, 60));
        assert!(hm.overlaps(&single));
        assert_eq!(format!("{single:?}"), "[50 : 60)");
        assert!(format!("{hm:?}").contains("src=5:10"));
    }

    #[test]
    fn field_ids() {
        assert_eq!(FieldId::DST.to_string(), "dst");
        assert_eq!(FieldId::SRC.to_string(), "src");
        assert_eq!(FieldId::DPORT.to_string(), "dport");
        assert_eq!(FieldId(7).name(), "field");
        assert_eq!(FieldId::SRC.index(), 1);
    }
}
