//! # netmodel — the network substrate underneath Delta-net
//!
//! This crate contains everything the Delta-net paper (NSDI 2017) *assumes*
//! rather than *contributes*: IP prefixes and their interval representation,
//! the network topology and its links, forwarding rules with priorities,
//! per-switch forwarding tables, replayable operation traces, and the
//! [`Checker`] trait that both the Delta-net engine and the Veriflow-RI
//! baseline implement so that they can be compared head-to-head.
//!
//! The types here are deliberately small, `Copy` where possible, and free of
//! interior mutability: the verification engines built on top are the hot
//! path and they own all mutable state themselves.
//!
//! ## Layout
//!
//! * [`interval`] — half-closed intervals `[lo : hi)` over the packet-header
//!   field space (the paper's §3.1 representation of IP prefixes).
//! * [`ip`] — IPv4 (and width-generic) CIDR prefixes and conversion to
//!   intervals.
//! * [`packet`] — a minimal packet-header model used by the simulation-level
//!   sanity checks (a packet is matched by the highest-priority rule whose
//!   interval contains its destination address).
//! * [`topology`] — nodes, directed links, and graph utilities (shortest
//!   paths) used both by the engines and by the workload generators.
//! * [`rule`] — forwarding rules: match interval, priority, action, link.
//! * [`fib`] — a reference forwarding-table implementation with
//!   longest-prefix/highest-priority matching. This is the "ground truth"
//!   oracle the property tests compare the engines against.
//! * [`trace`] — the replayable text format for operation traces
//!   (one insert/remove per line), mirroring how the paper's datasets are
//!   organized (§4.2).
//! * [`checker`] — the [`Checker`] trait, update reports, and invariant
//!   violation types shared by all engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod fib;
pub mod header;
pub mod interval;
pub mod ip;
pub mod packet;
pub mod rule;
pub mod topology;
pub mod trace;

pub use checker::{Checker, InvariantViolation, UpdateReport, WhatIfReport};
pub use fib::ForwardingTable;
pub use header::{FieldId, HeaderMatch, HeaderSpace, SecondaryMatch, MAX_SECONDARY_FIELDS};
pub use interval::Interval;
pub use ip::{IpPrefix, PrefixParseError};
pub use packet::Packet;
pub use rule::{Action, Priority, Rule, RuleId};
pub use topology::{LinkId, NodeId, Topology};
pub use trace::{Op, Trace};
