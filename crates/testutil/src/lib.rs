//! Shared, seeded generators for the randomized differential suites.
//!
//! Before this crate existed, `tests/differential.rs`,
//! `crates/deltanet/tests/sharded_differential.rs`,
//! `crates/deltanet/tests/compaction.rs` and
//! `crates/deltanet/tests/atom_invariants.rs` each carried their own copy of
//! the same ad-hoc topology/rule generators, drifting in small ways
//! (priority ranges, drop-link setup). The shared versions here are:
//!
//! * **Seeded** — every generator is a pure function of the caller's
//!   [`StdRng`], so a failing case reproduces from its printed seed alone.
//! * **Shrink-friendly** — [`random_ops`] returns a *well-formed trace as
//!   data*: every `Remove` refers to a rule inserted earlier and still
//!   live, so **any prefix of the trace is itself a well-formed trace**.
//!   Minimizing a failure is replaying prefixes (binary-search the length),
//!   no generator state needed.
//!
//! The generators intentionally target a *small* (8-bit by default) address
//! space: the oracles exhaustively check all 256 addresses, and narrow
//! spaces make rules overlap and atoms split aggressively — the regime the
//! differential suites exist to stress.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netmodel::checker::InvariantViolation;
use netmodel::header::SecondaryMatch;
use netmodel::interval::{normalize, Interval};
use netmodel::ip::IpPrefix;
use netmodel::rule::{Rule, RuleId};
use netmodel::topology::{LinkId, NodeId, Topology};
use netmodel::trace::Op;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Builds a random strongly-connected topology with `n` switches: a ring
/// for strong connectivity plus `n` random chords, and (when requested) one
/// drop link per switch so drop rules can be generated without mutating the
/// topology mid-trace.
pub fn random_topology(rng: &mut StdRng, n: usize, with_drop_links: bool) -> Topology {
    let mut topo = Topology::new();
    let nodes = topo.add_nodes("s", n);
    for i in 0..n {
        topo.add_bidi_link(nodes[i], nodes[(i + 1) % n]);
    }
    for _ in 0..n {
        let a = nodes[rng.gen_range(0..n)];
        let b = nodes[rng.gen_range(0..n)];
        if a != b {
            topo.add_link(a, b);
        }
    }
    if with_drop_links {
        for node in topo.switch_nodes().collect::<Vec<_>>() {
            topo.drop_link(node);
        }
    }
    topo
}

/// Draws a random non-empty interval inside a `width`-bit field space.
pub fn random_interval(rng: &mut StdRng, width: u8) -> Interval {
    let max = 1u128 << width;
    let lo = rng.gen_range(0..max - 1);
    let hi = rng.gen_range(lo + 1..=max);
    Interval::new(lo, hi)
}

/// Generates a random rule over a `width`-bit address space: a random
/// prefix (all lengths `0..=width` equally likely, so wide rules straddling
/// shard boundaries are common), a random source switch, priority in
/// `1..=max_priority`, and a 10% chance of being an explicit drop rule —
/// taken only when the switch has a pre-created drop link
/// ([`random_topology`] with `with_drop_links: true`). The topology is
/// never mutated: a trace generated after an engine cloned the topology
/// must not reference links the engine has never seen.
pub fn random_rule(
    rng: &mut StdRng,
    topo: &Topology,
    id: u64,
    width: u8,
    max_priority: u32,
) -> Rule {
    let switches: Vec<NodeId> = topo.switch_nodes().collect();
    let source = switches[rng.gen_range(0..switches.len())];
    let len = rng.gen_range(0..=width);
    let value = rng.gen_range(0u128..1u128 << width);
    let prefix = IpPrefix::new(value, len, width);
    let priority = rng.gen_range(1..=max_priority);
    let drop_link = topo
        .out_links(source)
        .iter()
        .copied()
        .find(|&l| topo.is_drop_link(l));
    if let (true, Some(dl)) = (rng.gen_bool(0.1), drop_link) {
        Rule::drop(RuleId(id), prefix, priority, source, dl)
    } else {
        let out: Vec<LinkId> = topo
            .out_links(source)
            .iter()
            .copied()
            .filter(|&l| !topo.is_drop_link(l))
            .collect();
        let link = out[rng.gen_range(0..out.len())];
        Rule::forward(RuleId(id), prefix, priority, source, link)
    }
}

/// Draws a random secondary match over the given field widths: each field
/// is constrained to a random sub-range with probability 0.6 and
/// wildcarded (full range) otherwise; trailing wildcards are trimmed so
/// an all-wildcard draw is the empty (single-field) match.
pub fn random_secondary(rng: &mut StdRng, sec_widths: &[u8]) -> SecondaryMatch {
    let mut intervals: Vec<Interval> = sec_widths
        .iter()
        .map(|&w| {
            if rng.gen_bool(0.6) {
                random_interval(rng, w)
            } else {
                Interval::new(0, 1u128 << w)
            }
        })
        .collect();
    while intervals
        .last()
        .is_some_and(|iv| *iv == Interval::new(0, 1u128 << sec_widths[intervals.len() - 1]))
    {
        intervals.pop();
    }
    if intervals.is_empty() {
        SecondaryMatch::default()
    } else {
        SecondaryMatch::new(&intervals)
    }
}

/// Stateful insert/remove generator tracking the live rule set, for suites
/// that interleave generation with checking.
///
/// Rule ids are globally unique across the generator's lifetime. Candidate
/// insertions that would create a same-priority overlap at one switch (a
/// data plane with no well-defined winner) are rejected —
/// [`OpGen::next_op`] returns `None` for that draw, exactly like the
/// `continue` in the suites this replaces, keeping RNG streams
/// deterministic per seed.
#[derive(Clone, Debug)]
pub struct OpGen {
    width: u8,
    sec_widths: Vec<u8>,
    max_priority: u32,
    remove_bias: f64,
    live: Vec<Rule>,
    next_id: u64,
}

impl OpGen {
    /// A generator over a `width`-bit space with the given probability of
    /// drawing a removal (when any rule is live) and priority range.
    pub fn new(width: u8, max_priority: u32, remove_bias: f64) -> Self {
        OpGen {
            width,
            sec_widths: Vec::new(),
            max_priority,
            remove_bias,
            live: Vec::new(),
            next_id: 0,
        }
    }

    /// Makes generated insertions multi-field: each rule additionally draws
    /// a [`random_secondary`] match over the given field widths.
    pub fn with_secondary(mut self, sec_widths: &[u8]) -> Self {
        self.sec_widths = sec_widths.to_vec();
        self
    }

    /// The rules currently live (inserted and not yet removed).
    pub fn live(&self) -> &[Rule] {
        &self.live
    }

    /// Draws the next operation: a removal of a random live rule with
    /// probability `remove_bias`, otherwise an insertion of a fresh random
    /// rule. Returns `None` if the drawn insertion conflicted (skip and
    /// draw again).
    pub fn next_op(&mut self, rng: &mut StdRng, topo: &Topology) -> Option<Op> {
        if !self.live.is_empty() && rng.gen_bool(self.remove_bias) {
            let rule = self.live.swap_remove(rng.gen_range(0..self.live.len()));
            Some(Op::Remove(rule.id))
        } else {
            let mut rule = random_rule(rng, topo, self.next_id, self.width, self.max_priority);
            if !self.sec_widths.is_empty() {
                rule = rule.with_secondary(random_secondary(rng, &self.sec_widths));
            }
            self.next_id += 1;
            if self.live.iter().any(|r| r.conflicts_with(&rule)) {
                return None;
            }
            self.live.push(rule);
            Some(Op::Insert(rule))
        }
    }
}

/// Generates a complete well-formed trace of exactly `len` operations
/// (see the module docs for why prefixes of the result shrink cleanly).
pub fn random_ops(
    rng: &mut StdRng,
    topo: &Topology,
    len: usize,
    width: u8,
    max_priority: u32,
    remove_bias: f64,
) -> Vec<Op> {
    let mut gen = OpGen::new(width, max_priority, remove_bias);
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        if let Some(op) = gen.next_op(rng, topo) {
            ops.push(op);
        }
    }
    ops
}

/// [`random_ops`] over a multi-field header space: every insertion carries
/// a [`random_secondary`] match over `sec_widths`, and the prefix-closure
/// guarantee is unchanged.
pub fn random_ops_multifield(
    rng: &mut StdRng,
    topo: &Topology,
    len: usize,
    width: u8,
    sec_widths: &[u8],
    max_priority: u32,
    remove_bias: f64,
) -> Vec<Op> {
    let mut gen = OpGen::new(width, max_priority, remove_bias).with_secondary(sec_widths);
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        if let Some(op) = gen.next_op(rng, topo) {
            ops.push(op);
        }
    }
    ops
}

/// Forwarding loops keyed by their node cycle, with normalized packets —
/// the comparison form that is invariant under atom numbering, shard
/// partitioning, and report ordering, shared by every differential suite.
pub fn loops_by_cycle(violations: &[InvariantViolation]) -> BTreeMap<Vec<NodeId>, Vec<Interval>> {
    let mut out: BTreeMap<Vec<NodeId>, Vec<Interval>> = BTreeMap::new();
    for v in violations {
        if let InvariantViolation::ForwardingLoop { nodes, packets } = v {
            out.entry(nodes.clone())
                .or_default()
                .extend(packets.clone());
        }
    }
    for packets in out.values_mut() {
        *packets = normalize(std::mem::take(packets));
    }
    out
}

/// Blackholed address space per node, invariant under atom numbering (the
/// blackhole counterpart of [`loops_by_cycle`]).
pub fn blackholes_by_node(violations: &[InvariantViolation]) -> BTreeMap<NodeId, Vec<Interval>> {
    let mut out: BTreeMap<NodeId, Vec<Interval>> = BTreeMap::new();
    for v in violations {
        if let InvariantViolation::Blackhole { node, packets } = v {
            out.entry(*node).or_default().extend(packets.clone());
        }
    }
    for packets in out.values_mut() {
        *packets = normalize(std::mem::take(packets));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn topology_is_strongly_connected_with_drop_links() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_topology(&mut rng, 5, true);
            assert!(topo.is_strongly_connected());
            assert!(topo.drop_node().is_some());
            for node in topo.switch_nodes().collect::<Vec<_>>() {
                assert!(topo.out_links(node).iter().any(|&l| topo.is_drop_link(l)));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = |seed: u64| -> Vec<Op> {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_topology(&mut rng, 4, true);
            random_ops(&mut rng, &topo, 50, 8, 40, 0.35)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn traces_are_well_formed_prefix_closed() {
        let mut rng = StdRng::seed_from_u64(42);
        let topo = random_topology(&mut rng, 5, true);
        let ops = random_ops(&mut rng, &topo, 200, 8, 40, 0.4);
        assert_eq!(ops.len(), 200);
        // Every prefix is well-formed: removals only of live rules, no
        // duplicate inserts, no same-priority overlaps among live rules.
        let mut live: Vec<Rule> = Vec::new();
        let mut ever: HashSet<u64> = HashSet::new();
        for op in &ops {
            match op {
                Op::Insert(r) => {
                    assert!(ever.insert(r.id.0), "rule id reused");
                    assert!(!live.iter().any(|l| l.conflicts_with(r)));
                    live.push(*r);
                }
                Op::Remove(id) => {
                    let pos = live.iter().position(|r| r.id == *id);
                    live.swap_remove(pos.expect("removal of a non-live rule"));
                }
            }
        }
    }

    #[test]
    fn random_intervals_fit_the_field_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let iv = random_interval(&mut rng, 10);
            assert!(!iv.is_empty());
            assert!(iv.hi() <= 1 << 10);
        }
    }
}
