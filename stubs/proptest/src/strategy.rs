//! The [`Strategy`] trait and the built-in strategies for ranges and tuples.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike the real proptest (whose strategies produce shrinkable value
/// trees), this stub generates plain values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirror of `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
