//! Case execution: deterministic per-case seeding and failure reporting.

use rand::SeedableRng;

/// The RNG handed to strategies (the offline stub of `TestRng`).
pub type TestRng = rand::StdRng;

/// A failed test case (mirror of `proptest::test_runner::TestCaseError`,
/// reduced to the failure message).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Number of cases per property: `PROPTEST_CASES` or 256 (the real
/// proptest's default).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `case` repeatedly with per-case deterministic seeds, panicking (as a
/// normal test failure) on the first case that returns `Err`.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for i in 0..case_count() {
        let seed = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i} (seed {seed:#x}):\n{e}");
        }
    }
}
