//! Offline, dependency-free stub of the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! `prop_map`, range and tuple strategies, [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this path crate. Differences from the real crate:
//! no shrinking (a failing case reports its seed and generated-input debug
//! instead of a minimal counterexample), and generation is plain uniform
//! sampling. The number of cases per property defaults to 256 and can be
//! overridden with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop`: module-style access to the
    /// strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item expands to a test that runs the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}
