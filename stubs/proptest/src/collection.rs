//! Collection strategies (mirror of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A range of collection sizes (mirror of `proptest::collection::SizeRange`).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
