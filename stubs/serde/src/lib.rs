//! Offline stub of the `serde` facade.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes through serde yet (the seed types only
//! derive the traits for downstream use; on-disk formats are the
//! line-oriented text formats in `netmodel::trace` / `deltanet_cli`). The
//! stub therefore provides marker traits blanket-implemented for every type,
//! plus no-op derive macros, mirroring the real facade's namespace layout so
//! `use serde::{Deserialize, Serialize}` + `#[derive(Serialize)]` compile
//! unchanged against the real crate later.

#![forbid(unsafe_code)]

pub use serde_derive_stub::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types (the real trait's `'de` lifetime is dropped — nothing in-tree names
/// it).
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
