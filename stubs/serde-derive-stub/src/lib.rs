//! No-op `Serialize`/`Deserialize` derive macros for the offline serde stub.
//!
//! The stub's traits are blanket-implemented for every type (see
//! `stubs/serde`), so the derives have nothing to generate — they only need
//! to exist so that `#[derive(Serialize, Deserialize)]` on seed types
//! compiles, and to accept (and ignore) `#[serde(...)]` helper attributes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
