//! The stub's standard generator.

use crate::{RngCore, SeedableRng};

/// A deterministic 64-bit PRNG (splitmix64-seeded xoshiro256**-lite).
///
/// Stream-incompatible with the real `rand::rngs::StdRng`; equally
/// deterministic for a fixed seed, which is all in-repo consumers rely on.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** scrambler.
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.gen_range(0..=8);
            assert!(y <= 8);
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn f64_inclusive_ranges_handle_negative_and_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(-1.0..=-1.0), -1.0);
            let x: f64 = rng.gen_range(-2.0..=-1.0);
            assert!((-2.0..=-1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
