//! Slice helpers (the stub's equivalent of `rand::seq`).

use crate::{Rng, RngCore};

/// Extension methods on slices: shuffling and random choice.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
