//! Offline, dependency-free stub of the subset of the `rand` 0.8 API this
//! workspace uses: [`rngs::StdRng`], [`Rng`], [`SeedableRng`], and
//! [`seq::SliceRandom`].
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace resolves `rand` to this path crate. The generator is a
//! deterministic splitmix64-seeded xoshiro256** PRNG — statistically fine
//! for workload generation and tests, **not** cryptographically secure, and
//! its streams differ from the real `rand` crate (all in-repo consumers only
//! rely on determinism for a fixed seed, not on specific streams).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// A source of random `u64`s (the stub's equivalent of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the stub's equivalent of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range. Mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough that
/// [`SampleRange`] can be blanket-implemented over it, which is what lets
/// type inference resolve calls like `v[rng.gen_range(0..v.len())]`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                lo + (next_u128(rng) % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return next_u128(rng) as $t;
                }
                let span = (hi - lo) as u128 + 1;
                lo + (next_u128(rng) % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (next_u128(rng) % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (next_u128(rng) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + next_u128(rng) % (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        if lo == u128::MIN && hi == u128::MAX {
            return next_u128(rng);
        }
        lo + next_u128(rng) % (hi - lo + 1)
    }
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        // Closed unit interval: both endpoints (and lo == hi) are reachable.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
