//! Offline stub of the subset of the Criterion benchmarking API this
//! workspace uses. The build environment has no access to crates.io, so the
//! workspace resolves `criterion` to this path crate.
//!
//! It is a real (if minimal) harness: every benchmark runs a short warm-up,
//! then a fixed measurement window, and one `name  time: [median .. mean]`
//! line is printed per benchmark. There are no statistics beyond that — no
//! outlier analysis, no HTML reports, no baselines — but timings are honest
//! wall-clock numbers, so relative comparisons (Delta-net vs Veriflow-RI,
//! bitset vs BTreeSet) remain meaningful.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the measurement loop should treat per-iteration setup output
/// (mirror of `criterion::BatchSize`; the stub runs one batch per setup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch in real Criterion.
    SmallInput,
    /// Large inputs: one iteration per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark (recorded, reported per-element).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (mirror of `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 1000 {
                break;
            }
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.measurement_time;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 1000 {
                break;
            }
        }
    }
}

#[derive(Clone, Copy)]
struct Settings {
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }
}

fn run_and_report(full_id: &str, settings: Settings, run: impl FnOnce(&mut Bencher<'_>)) {
    let mut samples: Vec<Duration> = Vec::new();
    run(&mut Bencher {
        samples: &mut samples,
        measurement_time: settings.measurement_time,
    });
    if samples.is_empty() {
        println!("{full_id:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let mut line = format!(
        "{full_id:<50} time: [{} .. {}]  ({} samples)",
        format_duration(median),
        format_duration(mean),
        samples.len()
    );
    if let Some(Throughput::Elements(n)) = settings.throughput {
        let per_elem = median.as_secs_f64() / n.max(1) as f64;
        line.push_str(&format!("  {:.0} ns/elem", per_elem * 1e9));
    }
    println!("{line}");
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// The benchmark driver (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_and_report(&id.to_string(), Settings::default(), |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: Settings::default(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub sizes runs by wall-clock window,
    /// not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for each benchmark in the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        run_and_report(&full, self.settings, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_and_report(&full, self.settings, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
