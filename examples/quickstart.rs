//! Quickstart: build a small network, stream rule updates through Delta-net,
//! and catch a forwarding loop the moment it is introduced.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The scenario reproduces the paper's running example (§2.1 / Table 1): a
//! handful of switches, overlapping IP prefix rules with priorities, and a
//! per-update forwarding-loop check.

use delta_net::prelude::*;

fn main() {
    // 1. Describe the topology: four switches in the shape of Figure 1.
    let mut topo = Topology::new();
    let s1 = topo.add_node("s1");
    let s2 = topo.add_node("s2");
    let s3 = topo.add_node("s3");
    let s4 = topo.add_node("s4");
    let l12 = topo.add_link(s1, s2);
    let l23 = topo.add_link(s2, s3);
    let l34 = topo.add_link(s3, s4);
    let l14 = topo.add_link(s1, s4);
    let l41 = topo.add_link(s4, s1); // reverse direction, used to force a loop
    let drop_s1 = topo.drop_link(s1);

    // 2. Create the checker. Per-update loop checking is on by default.
    let mut net = DeltaNet::with_topology(topo);

    // 3. Install the rules of the running example.
    let updates = vec![
        // r1: s1 forwards 10.0.0.0/8 to s2 (low priority).
        Rule::forward(RuleId(1), "10.0.0.0/8".parse().unwrap(), 10, s1, l12),
        // r2: s2 forwards 10.0.0.0/9 to s3.
        Rule::forward(RuleId(2), "10.0.0.0/9".parse().unwrap(), 10, s2, l23),
        // r3: s3 forwards 10.0.0.0/8 to s4.
        Rule::forward(RuleId(3), "10.0.0.0/8".parse().unwrap(), 10, s3, l34),
        // r4: s1 forwards 10.64.0.0/10 directly to s4, higher priority than r1.
        Rule::forward(RuleId(4), "10.64.0.0/10".parse().unwrap(), 20, s1, l14),
        // rH (Table 1): s1 drops 10.0.0.10/31 with the highest priority.
        Rule::drop(RuleId(5), "10.0.0.10/31".parse().unwrap(), 99, s1, drop_s1),
    ];
    for rule in updates {
        let report = net.insert_rule(rule);
        println!(
            "insert {:>2}: {:2} atoms affected, {} changed link(s), loops: {}",
            report.rule_id.unwrap(),
            report.affected_classes,
            report.changed_links.len(),
            report.has_loop()
        );
    }

    // 4. Ask the persistent flow API what travels on each link.
    let q = deltanet::query::FlowQuery::new(&net);
    for (name, link) in [("s1->s2", l12), ("s2->s3", l23), ("s1->s4", l14)] {
        println!("packets on {name}: {:?}", q.packets_on_link(link));
    }
    println!(
        "packets that can reach s4 from s1: {:?}",
        q.packets_from_to(s1, s4).packets
    );

    // 5. Introduce a bad rule: s4 sends 10.64.0.0/10 back to s1 — a loop.
    let report = net.insert_rule(Rule::forward(
        RuleId(6),
        "10.64.0.0/10".parse().unwrap(),
        50,
        s4,
        l41,
    ));
    for violation in &report.violations {
        println!("VIOLATION: {violation}");
    }
    assert!(report.has_loop(), "the loop must be detected in real time");

    // 6. Fix it and confirm the data plane is clean again.
    net.remove_rule(RuleId(6));
    assert!(net.check_all_loops().is_empty());
    println!("loop removed; data plane verified clean");
    println!(
        "final state: {} rules, {} atoms, ~{} KiB",
        net.rule_count(),
        net.atom_count(),
        net.memory_bytes() / 1024
    );
}
