//! "What if this link fails?" — the Datalog-style query of §4.3.2.
//!
//! Run with: `cargo run --release --example whatif_link_failure`
//!
//! Builds a Rocketfuel-class ISP data plane from synthetic BGP prefixes,
//! then answers, for the busiest links, which packets and which parts of the
//! network would be affected by a failure — comparing Delta-net (which reads
//! its persistent edge labels) against Veriflow-RI (which must rebuild
//! forwarding graphs for every affected equivalence class).

use delta_net::prelude::*;
use std::time::Instant;

fn main() {
    // A scaled-down RF 1755 data plane.
    let ds = workloads::build(DatasetId::Rf1755, ScaleProfile::Tiny);
    let rules: Vec<Rule> = ds
        .trace
        .ops()
        .iter()
        .filter_map(|op| match op {
            Op::Insert(r) => Some(*r),
            _ => None,
        })
        .collect();
    println!(
        "data plane: {} ({} nodes, {} links, {} rules)",
        ds.id.name(),
        ds.topology.node_count(),
        ds.topology.link_count(),
        rules.len()
    );

    let mut net = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    let mut vf = VeriflowRi::new(
        ds.topology.topology.clone(),
        VeriflowConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for r in &rules {
        net.insert_rule(*r);
        vf.insert_rule(*r);
    }

    // Query the five busiest links.
    let mut links: Vec<_> = ds
        .topology
        .topology
        .links()
        .iter()
        .map(|l| (l.id, net.label(l.id).len()))
        .collect();
    links.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    println!(
        "\n{:<8} {:>10} {:>14} {:>16} {:>14}",
        "link", "atoms", "delta-net", "delta-net+loops", "veriflow-ri"
    );
    for &(link, atoms) in links.iter().take(5) {
        let t0 = Instant::now();
        let dn = net.what_if_link_failure(link, false);
        let dn_time = t0.elapsed();

        let t1 = Instant::now();
        let dn_loops = net.what_if_link_failure(link, true);
        let dn_loops_time = t1.elapsed();

        let t2 = Instant::now();
        let vf_rep = vf.what_if_link_failure(link, false);
        let vf_time = t2.elapsed();

        println!(
            "{:<8} {:>10} {:>12.1}us {:>14.1}us {:>12.1}us",
            format!("{link}"),
            atoms,
            dn_time.as_secs_f64() * 1e6,
            dn_loops_time.as_secs_f64() * 1e6,
            vf_time.as_secs_f64() * 1e6,
        );
        println!(
            "         affected: {} atoms / {} ECs, {} downstream links, {} loops in affected flows",
            dn.affected_classes,
            vf_rep.affected_classes,
            dn.affected_links.len(),
            dn_loops.violations.len()
        );
    }
}
