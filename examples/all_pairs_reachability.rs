//! All-pairs reachability with Algorithm 3 (§3.3) — the pre-deployment,
//! Datalog-style use case.
//!
//! Run with: `cargo run --release --example all_pairs_reachability`
//!
//! Builds a small campus data plane, computes the transitive closure of all
//! packet flows between every pair of switches with the Floyd–Warshall
//! adaptation over atom sets, and then answers a few policy questions
//! (isolation, waypointing) from the same matrix.

use delta_net::prelude::*;
use deltanet::query::FlowQuery;
use workloads::bgp::{generate_prefixes, PrefixGenConfig};
use workloads::rulegen::{generate_data_plane, PriorityMode};
use workloads::topologies::campus;

fn main() {
    // A small campus: 2 cores, 3 distribution, 6 access switches.
    let topo = campus("campus", 2, 3, 6, 7);
    let prefixes = generate_prefixes(PrefixGenConfig {
        count: 120,
        overlap_percent: 40,
        seed: 99,
    });
    let plane = generate_data_plane(&topo, &prefixes, PriorityMode::PrefixLength, 5);
    println!(
        "campus data plane: {} nodes, {} links, {} rules, {} prefixes",
        topo.node_count(),
        topo.link_count(),
        plane.rules.len(),
        prefixes.len()
    );

    let mut net = DeltaNet::new(
        topo.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for r in &plane.rules {
        net.insert_rule(*r);
    }
    println!("atoms: {}", net.atom_count());

    // Algorithm 3: the all-pairs reachability of every atom.
    let start = std::time::Instant::now();
    let matrix = ReachabilityMatrix::compute(&net);
    println!(
        "Algorithm 3 over {} nodes took {:.2} ms; {} reachable (src, dst) pairs",
        matrix.node_count(),
        start.elapsed().as_secs_f64() * 1e3,
        matrix.reachable_pair_count()
    );

    // Show the flows between the first two access switches.
    let acc0 = topo.topology.node_by_name("acc0").unwrap();
    let acc1 = topo.topology.node_by_name("acc1").unwrap();
    let packets = matrix.reachable_packets(&net, acc0, acc1);
    println!(
        "packets that can flow acc0 -> acc1: {} interval(s), e.g. {:?}",
        packets.len(),
        packets.first()
    );

    // Policy questions answered from the persistent state.
    let q = FlowQuery::new(&net);
    let core0 = topo.topology.node_by_name("core0").unwrap();
    println!(
        "acc0 -> acc1 always traverses core0? {}",
        q.always_traverses(acc0, acc1, core0)
    );
    println!("acc0 isolated from acc1? {}", q.isolated(acc0, acc1));

    // Count fully-isolated pairs among access switches (should be none in a
    // well-configured campus).
    let access: Vec<NodeId> = (0..6)
        .map(|i| topo.topology.node_by_name(&format!("acc{i}")).unwrap())
        .collect();
    let mut isolated_pairs = 0;
    for &a in &access {
        for &b in &access {
            if a != b && !matrix.can_reach(a, b) {
                isolated_pairs += 1;
            }
        }
    }
    println!("isolated access-switch pairs: {isolated_pairs}");
}
