//! The Boolean lattice induced by atoms (Appendix A / Figure 9).
//!
//! Run with: `cargo run --example lattice_demo`
//!
//! Reproduces the paper's worked example: the two rules of Table 1 over a
//! 4-bit address space induce three atoms, whose Boolean combinations form
//! the eight-element lattice of Figure 9. The demo prints the Hasse diagram
//! levels and shows how rule semantics (e.g. "rL matches only what rH does
//! not") are expressed as lattice operations.

use deltanet::atoms::AtomMap;
use deltanet::lattice::AtomLattice;
use netmodel::interval::Interval;

fn main() {
    // Table 1 over 4-bit addresses: rH = 0.0.0.10/31 -> [10:12), rL = /28 -> [0:16).
    let mut atoms = AtomMap::new(4);
    let rh = Interval::new(10, 12);
    let rl = Interval::new(0, 16);
    atoms.create_atoms(rh);
    atoms.create_atoms(rl);

    println!("atoms induced by the rules of Table 1 (4-bit space):");
    for (id, interval) in atoms.iter() {
        println!("  {id} = {interval}");
    }

    let lattice = AtomLattice::new(&atoms);
    println!(
        "\nBoolean lattice: {} atoms -> {} elements (Figure 9)",
        lattice.atom_count(),
        1usize << lattice.atom_count()
    );

    // Print the Hasse diagram level by level, top first (as in Figure 9).
    let levels = lattice.hasse_levels();
    for (k, level) in levels.iter().enumerate().rev() {
        let rendered: Vec<String> = level
            .iter()
            .map(|e| {
                let ivs = lattice.to_intervals(&atoms, e);
                if ivs.is_empty() {
                    "⊥".to_string()
                } else {
                    format!(
                        "{{{}}}",
                        ivs.iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            })
            .collect();
        println!("  level {k}: {}", rendered.join("   "));
    }

    // Rule semantics as lattice algebra.
    let rh_elem: deltanet::AtomSet = atoms.atoms_of(rh).into_iter().collect();
    let rl_elem: deltanet::AtomSet = atoms.atoms_of(rl).into_iter().collect();
    let only_rl = lattice.meet(&rl_elem, &lattice.complement(&rh_elem));
    println!(
        "\n⟦rL⟧ − ⟦rH⟧ (packets the low-priority rule actually matches): {:?}",
        lattice.to_intervals(&atoms, &only_rl)
    );
    assert_eq!(lattice.join(&rh_elem, &only_rl), rl_elem);
    println!("verified: ⟦rH⟧ ∨ (⟦rL⟧ − ⟦rH⟧) = ⟦rL⟧");
}
