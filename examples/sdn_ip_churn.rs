//! Real-time verification of SDN-IP controller churn (§4.2.2 / §4.3.1).
//!
//! Run with: `cargo run --release --example sdn_ip_churn`
//!
//! Simulates the paper's most realistic scenario: an SDN-IP/ONOS controller
//! on an Airtel-like WAN where BGP border routers advertise prefixes, links
//! fail and recover, and the controller continuously rewrites the data
//! plane. Every single rule insertion/removal is verified by Delta-net in
//! real time (loop check included) and the per-update latency distribution
//! is printed at the end.

use delta_net::prelude::*;
use workloads::sdnip::{SdnIpConfig, SdnIpController};
use workloads::topologies::airtel;

fn main() {
    let topo = airtel(12, 2026);
    let mut controller = SdnIpController::new(
        topo.clone(),
        SdnIpConfig {
            prefixes_per_router: 50,
            seed: 42,
        },
    );
    let mut checker = DeltaNet::with_topology(topo.topology.clone());
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut loops_found = 0usize;

    let mut verify = |checker: &mut DeltaNet, trace: Trace, phase: &str| {
        let mut phase_loops = 0;
        for op in trace.ops() {
            let start = std::time::Instant::now();
            let report = checker.apply(op);
            latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            if report.has_loop() {
                phase_loops += 1;
            }
        }
        if phase_loops > 0 {
            println!("  {phase}: {phase_loops} update(s) introduced a forwarding loop!");
        }
        loops_found += phase_loops;
    };

    // Initial convergence: the controller installs routes for every prefix.
    controller.reconcile();
    let initial = controller.take_trace();
    println!(
        "initial convergence: {} advertisements -> {} rule installs",
        controller.advertisements().len(),
        initial.len()
    );
    verify(&mut checker, initial, "initial");

    // Fail and recover every inter-switch link, verifying all churn.
    let pairs = controller.inter_switch_links();
    println!(
        "injecting {} single link failures (+ recovery)",
        pairs.len()
    );
    for &(a, b) in &pairs {
        controller.fail_link_between(a, b);
        verify(&mut checker, controller.take_trace(), "failure");
        controller.recover_link_between(a, b);
        verify(&mut checker, controller.take_trace(), "recovery");
    }

    // Report the latency distribution, Table-3 style.
    latencies_us.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let median = latencies_us[latencies_us.len() / 2];
    let avg: f64 = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    let under_250 = latencies_us.iter().filter(|&&t| t < 250.0).count();
    println!(
        "\nverified {} data-plane updates in real time",
        latencies_us.len()
    );
    println!("  atoms maintained:        {}", checker.atom_count());
    println!("  median update latency:   {median:.1} us");
    println!("  average update latency:  {avg:.1} us");
    println!(
        "  updates under 250 us:    {:.2}%",
        100.0 * under_250 as f64 / latencies_us.len() as f64
    );
    println!("  forwarding loops found:  {loops_found}");
    println!("  final rules installed:   {}", checker.rule_count());
}
