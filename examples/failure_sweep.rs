//! Exhaustive single-link failure sweep using the parallel query API (§6).
//!
//! Run with: `cargo run --release --example failure_sweep`
//!
//! The paper's concluding remarks point at "testing scenarios under
//! different combinations of failures" as the natural next use of Delta-net.
//! This example builds an ISP-class data plane, then asks the what-if
//! question for *every* link in the network at once — in parallel, because
//! the queries only read the persistent edge-labelled graph — and summarizes
//! which links are the riskiest (carry the most packet classes) and whether
//! any failure would expose a forwarding loop among the affected flows.

use delta_net::prelude::*;
use deltanet::parallel::what_if_many;
use std::time::Instant;

fn main() {
    // A scaled-down RF 6461 data plane (all insertions, no removals).
    let ds = workloads::build(DatasetId::Rf6461, ScaleProfile::Tiny);
    let rules: Vec<Rule> = ds
        .trace
        .ops()
        .iter()
        .filter_map(|op| match op {
            Op::Insert(r) => Some(*r),
            _ => None,
        })
        .collect();

    let mut net = DeltaNet::new(
        ds.topology.topology.clone(),
        DeltaNetConfig {
            check_loops_per_update: false,
            ..Default::default()
        },
    );
    for r in &rules {
        net.insert_rule(*r);
    }
    println!(
        "data plane: {} — {} nodes, {} links, {} rules, {} atoms",
        ds.id.name(),
        ds.topology.node_count(),
        ds.topology.link_count(),
        rules.len(),
        net.atom_count()
    );

    // Sweep every link in the network.
    let links: Vec<LinkId> = ds.topology.topology.links().iter().map(|l| l.id).collect();
    let start = Instant::now();
    let reports = what_if_many(&net, &links, true);
    let elapsed = start.elapsed();
    println!(
        "swept {} hypothetical single-link failures in {:.2} ms ({:.1} us per query)",
        links.len(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / links.len() as f64
    );

    // Rank links by how many packet classes their failure would strand.
    let mut ranked: Vec<(LinkId, usize, usize)> = links
        .iter()
        .zip(&reports)
        .map(|(&l, r)| (l, r.affected_classes, r.affected_links.len()))
        .collect();
    ranked.sort_by_key(|&(_, classes, _)| std::cmp::Reverse(classes));

    println!("\nriskiest links (by affected packet classes):");
    for (link, classes, downstream) in ranked.iter().take(5) {
        let l = ds.topology.topology.link(*link);
        println!(
            "  {} -> {}: {} packet classes, traffic shared with {} other links",
            ds.topology.topology.node_name(l.src),
            ds.topology.topology.node_name(l.dst),
            classes,
            downstream
        );
    }

    let failures_with_loops = reports.iter().filter(|r| !r.violations.is_empty()).count();
    let idle_links = reports.iter().filter(|r| r.affected_classes == 0).count();
    println!("\nfailures exposing a forwarding loop among affected flows: {failures_with_loops}");
    println!("links carrying no traffic at all: {idle_links}");
}
