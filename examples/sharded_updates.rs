//! Sharded batched updates: partition the address space across engines and
//! apply a window of rule updates with the per-shard groups running
//! concurrently, then show that the sharded and the single engine agree on
//! every observable answer.
//!
//! Run with: `cargo run --example sharded_updates`

use delta_net::prelude::*;
use deltanet::ShardedDeltaNet;

fn main() {
    // A 4-switch ring.
    let mut topo = Topology::new();
    let nodes = topo.add_nodes("s", 4);
    for i in 0..4 {
        topo.add_link(nodes[i], nodes[(i + 1) % 4]);
    }

    let config = DeltaNetConfig {
        check_loops_per_update: false,
        ..Default::default()
    };
    // Three shards, so the boundaries fall at non-prefix positions and the
    // wide rules below genuinely straddle them.
    let mut sharded = ShardedDeltaNet::new(topo.clone(), config, 3);
    let mut single = DeltaNet::new(topo.clone(), config);

    // A batch of /6 rules spread over the whole IPv4 space plus the default
    // route, which is split at both interior shard boundaries.
    let mut ops: Vec<Op> = (0..32u64)
        .map(|i| {
            let prefix = IpPrefix::ipv4((i as u32) << 27, 6);
            let src = nodes[(i % 4) as usize];
            let link = topo.out_links(src)[0];
            Op::Insert(Rule::forward(RuleId(i), prefix, 10, src, link))
        })
        .collect();
    let default_route: IpPrefix = "0.0.0.0/0".parse().unwrap();
    ops.push(Op::Insert(Rule::forward(
        RuleId(99),
        default_route,
        1,
        nodes[0],
        topo.out_links(nodes[0])[0],
    )));

    let reports = sharded.apply_batch(&ops).expect("well-formed batch");
    for op in &ops {
        single.apply(op);
    }

    println!(
        "applied {} updates across {} shards ({} worker threads available)",
        reports.len(),
        sharded.shard_count(),
        sharded.parallelism().workers()
    );
    for (range, shard) in sharded.shard_ranges().iter().zip(sharded.shards()) {
        println!(
            "  shard {range}: {} rules, {} atoms, {} label bytes",
            shard.rule_count(),
            shard.owned_atom_count(),
            shard.labels().live_bytes()
        );
    }

    // The observable state is identical to the single engine's.
    let mut agreements = 0;
    for link in topo.links().iter().map(|l| l.id) {
        let merged = sharded.label_intervals(link);
        let single_view = netmodel::interval::normalize(
            single
                .label(link)
                .iter()
                .map(|a| single.atoms().atom_interval(a))
                .collect(),
        );
        assert_eq!(merged, single_view, "labels diverge on {link:?}");
        agreements += 1;
    }
    println!("sharded and single-engine labels agree on all {agreements} links");
    println!(
        "classes: sharded {} vs single {} (two extra: atoms split at the interior shard boundaries)",
        sharded.class_count(),
        single.class_count()
    );
}
